"""Fault-tolerant sweep execution: journal, timeouts, retries, recovery.

:func:`~repro.experiments.runner.run_sweep` answers "run these points";
this module answers the production question underneath it: run these
points **and survive** — a worker segfaulting, a point wedging forever,
a whole study killed halfway and restarted tomorrow.  The executor wraps
the existing :class:`~repro.experiments.runner.SweepPoint` machinery
with four guarantees:

* **Resume.**  With a journal (:mod:`repro.experiments.journal`), every
  completed point is committed the moment it finishes, keyed by a
  content hash of the point; a re-run loads completed points instead of
  recomputing them, and is bit-identical to an uninterrupted run.
* **Isolation.**  Parallel execution goes through
  ``ProcessPoolExecutor`` *futures*, never ``pool.map``: one point's
  exception, crash or hang costs that point (plus a bounded retry), not
  its siblings' results.  A broken pool is respawned and undelivered
  work resubmitted.
* **Timeouts and retries.**  A per-attempt wall-clock timeout is
  enforced twice — a ``SIGALRM`` guard inside the worker (cheap, exact)
  and a hard supervisor deadline that kills and respawns the pool when
  a worker is so wedged the alarm cannot fire.  Failed attempts retry
  with exponential backoff, up to ``retries`` times.
* **Graceful degradation.**  By default an exhausted point becomes an
  entry in a structured :class:`SweepFailureReport` and a ``None`` in
  the result list; ``strict=True`` restores fail-fast.

Lifecycle is observable: the executor owns a
:class:`~repro.engine.hooks.HookRegistry` and fires ``exec_point`` /
``exec_retry`` / ``exec_crash`` (see docs/simulator.md); the telemetry
bridge (:class:`~repro.telemetry.recorder.ExecutorRecorder`) turns those
into typed trace events when ``trace_path`` is set.

Determinism: every point carries its own seed and runs in a fresh
simulator, so *when* and *where* a point executes — serial, parallel,
after three crashes, loaded from a journal — never changes its result.
The chaos harness (:mod:`repro.experiments.chaos`) plus the property
suite prove it.  Wall-clock is read only through the injected ``clock``
/ ``sleep`` callables, keeping the determinism rules honest.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic as _monotonic
from time import sleep as _sleep
from typing import TYPE_CHECKING

from repro.engine.hooks import HookRegistry
from repro.errors import ConfigError, PointTimeoutError, SweepExecutionError
from repro.experiments.journal import SweepJournal, point_key

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.experiments.runner import SweepPoint
    from repro.metrics.summary import RunResult

#: Failure causes threaded through retries, hooks and reports.
CAUSE_ERROR = "error"
CAUSE_TIMEOUT = "timeout"
CAUSE_CRASH = "crash"


@dataclass(frozen=True)
class ExecutionPlan:
    """How a sweep should be executed (the resilience knobs).

    The default plan is maximally conservative about behaviour change:
    no journal, no timeout, no retries — exactly one attempt per point —
    but *degraded* completion (failures reported, siblings kept).  Pass
    ``strict=True`` for fail-fast.
    """

    #: Journal file path; ``None`` disables journaling (and resume).
    journal: str | Path | None = None
    #: Require ``journal`` to already exist (guards resume typos).
    resume: bool = False
    #: Per-attempt wall-clock budget, seconds; ``None`` = unbounded.
    timeout: float | None = None
    #: Extra retries after the first attempt (0 = single attempt).
    retries: int = 0
    #: Base backoff delay, seconds; attempt ``n`` waits
    #: ``backoff * 2**(n-1)`` (capped) before re-running.
    backoff: float = 0.5
    #: Upper bound on one backoff delay, seconds.
    backoff_cap: float = 30.0
    #: Seconds past ``timeout`` before the supervisor hard-kills a
    #: worker that the in-worker alarm failed to unwedge.
    grace: float = 2.0
    #: ``True`` restores fail-fast: the first exhausted point aborts the
    #: sweep (completed siblings stay journaled).
    strict: bool = False
    #: JSONL path for executor lifecycle trace events; ``None`` = off.
    trace_path: str | None = None
    #: Run points on warm workers: each worker keeps a small per-process
    #: construction cache (:mod:`repro.experiments.warm`) and reruns the
    #: next structurally-matching point on the same reset fabric.
    #: Bit-identical to cold execution (hypothesis-tested); a respawned
    #: worker simply starts with a cold cache.  ``False`` restores the
    #: historical build-from-scratch path.
    warm: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be > 0 seconds or None, got {self.timeout!r}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries!r}")
        if self.backoff < 0:
            raise ConfigError(f"backoff must be >= 0, got {self.backoff!r}")
        if self.backoff_cap < 0:
            raise ConfigError(
                f"backoff_cap must be >= 0, got {self.backoff_cap!r}"
            )
        if self.grace < 0:
            raise ConfigError(f"grace must be >= 0, got {self.grace!r}")
        if self.resume and self.journal is None:
            raise ConfigError("resume=True needs a journal path")

    @property
    def attempts_allowed(self) -> int:
        return 1 + self.retries

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        if self.backoff == 0.0:
            return 0.0
        return min(self.backoff * (2.0 ** (attempt - 1)), self.backoff_cap)


@dataclass(frozen=True)
class PointFailure:
    """One point that exhausted its retry budget."""

    label: str
    key: str
    attempts: int
    #: Cause of each failed attempt, in attempt order.
    causes: tuple[str, ...]
    #: Exception text of the last attempt.
    error: str
    #: Wall seconds spent across every attempt.
    elapsed: float


@dataclass(frozen=True)
class SweepFailureReport:
    """Structured account of everything a degraded sweep lost."""

    failures: tuple[PointFailure, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.failures)

    def summary(self) -> str:
        """Human-readable one-failure-per-line digest."""
        if not self.failures:
            return "no failures"
        lines = []
        for failure in self.failures:
            causes = ",".join(failure.causes)
            lines.append(
                f"{failure.label}: {failure.attempts} attempt(s) "
                f"[{causes}] in {failure.elapsed:.1f}s — {failure.error}"
            )
        return "\n".join(lines)


@dataclass
class ExecutorStats:
    """Counters describing how a sweep actually executed."""

    executed: int = 0
    cached: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    failed: int = 0


@dataclass
class SweepOutcome:
    """Everything a resilient sweep produced.

    ``results`` is aligned with the input points; entries are ``None``
    exactly for the points listed in ``report`` (degraded mode only —
    strict mode raises instead of returning holes).
    """

    results: list["RunResult | None"]
    report: SweepFailureReport
    stats: ExecutorStats

    @property
    def complete(self) -> bool:
        return not self.report


def _guarded_attempt(point: "SweepPoint", attempt: int,
                     timeout_s: float | None,
                     warm: bool = True) -> "RunResult":
    """One attempt at one point, under the soft-timeout alarm guard.

    Module-level so process pools can pickle it (the plan itself is not
    shipped to workers, so the ``warm`` knob travels as an argument).
    ``warm=True`` runs the point through the per-process construction
    cache (:mod:`repro.experiments.warm`); results are bit-identical
    either way.  The guard uses ``SIGALRM`` (delivered between
    bytecodes, so it interrupts any pure-Python hang); it is skipped off
    the main thread or on platforms without ``setitimer``, where only
    the supervisor's hard deadline applies.
    """
    if warm:
        from repro.experiments.warm import run_point_warm as run_attempt
    else:
        from repro.experiments.runner import run_point as run_attempt

    usable = (timeout_s is not None
              and hasattr(signal, "setitimer")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        return run_attempt(point, attempt)

    def _on_alarm(signum: int, frame: object) -> None:
        raise PointTimeoutError(
            f"sweep point {point.label!r} exceeded its {timeout_s:g}s "
            f"timeout (attempt {attempt})"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return run_attempt(point, attempt)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _Slot:
    """Supervisor-side bookkeeping for one point of the running sweep."""

    index: int
    point: "SweepPoint"
    key: str
    #: Indices sharing this slot's key (journal dedup), including index.
    indices: tuple[int, ...]
    attempts: int = 0
    causes: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    last_error: str = ""
    last_exception: BaseException | None = None


class ResilientSweepExecutor:
    """Executes one sweep under an :class:`ExecutionPlan`.

    One instance per sweep; ``hooks`` may be shared so long-lived
    observers (a service's metrics exporter, say) can follow many
    sweeps.  ``clock``/``sleep`` are injectable for tests — and so that
    wall time never leaks anywhere the determinism rules patrol.
    """

    def __init__(self, plan: ExecutionPlan | None = None, *,
                 max_workers: int | None = 1,
                 hooks: HookRegistry | None = None,
                 clock: Callable[[], float] = _monotonic,
                 sleep: Callable[[float], None] = _sleep):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1 or None, got {max_workers!r}"
            )
        self.plan = plan or ExecutionPlan()
        self.max_workers = max_workers
        self.hooks = hooks or HookRegistry()
        self.clock = clock
        self.sleep = sleep
        self.stats = ExecutorStats()
        self._recorder = None
        if self.plan.trace_path is not None:
            from repro.telemetry.recorder import ExecutorRecorder

            self._recorder = ExecutorRecorder(self.plan.trace_path)
            self._recorder.attach(self.hooks)

    # -- public API ------------------------------------------------------------

    def execute(self, points: Iterable["SweepPoint"]) -> SweepOutcome:
        """Run every point; never raises in degraded mode.

        Strict mode re-raises the first exhausted point's exception
        (:class:`ConfigError` gains the point label;
        worker crashes surface as :class:`SweepExecutionError`).
        """
        points = list(points)
        journal = self._open_journal()
        try:
            results: list[RunResult | None] = [None] * len(points)
            slots = self._build_slots(points, journal, results)
            if slots:
                workers = self._worker_count(len(slots))
                if workers == 1:
                    self._run_serial(slots, results, journal)
                else:
                    self._run_parallel(slots, results, journal, workers)
            failures = self._collect_failures(slots if slots else [])
            report = SweepFailureReport(failures=tuple(failures))
            if self.plan.strict and report:
                self._raise_strict(report, slots)
            return SweepOutcome(results=results, report=report,
                                stats=self.stats)
        finally:
            if journal is not None:
                journal.close()
            if self._recorder is not None:
                self._recorder.close()
                self._recorder = None

    # -- setup -----------------------------------------------------------------

    def _open_journal(self) -> SweepJournal | None:
        if self.plan.journal is None:
            return None
        path = Path(self.plan.journal)
        if self.plan.resume and not path.exists():
            raise ConfigError(
                f"--resume requested but journal {path} does not exist"
            )
        return SweepJournal(path)

    def _worker_count(self, pending: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(workers, pending))

    def _build_slots(self, points: Sequence["SweepPoint"],
                     journal: SweepJournal | None,
                     results: list["RunResult | None"]) -> list[_Slot]:
        """Resolve journal hits and dedup same-key points; returns the
        slots that still need executing."""
        slots: list[_Slot] = []
        by_key: dict[str, list[int]] = {}
        keys: list[str] = []
        for index, point in enumerate(points):
            key = point_key(point) if journal is not None else f"#{index}"
            keys.append(key)
            by_key.setdefault(key, []).append(index)
        seen: set[str] = set()
        for index, point in enumerate(points):
            key = keys[index]
            if key in seen:
                continue
            seen.add(key)
            indices = tuple(by_key[key])
            if journal is not None:
                cached = journal.get(key)
                if cached is not None:
                    for slot_index in indices:
                        results[slot_index] = cached
                        self.stats.cached += 1
                        self._fire_point(points[slot_index].label, key,
                                         "cached", 0, 0.0)
                    continue
            slots.append(_Slot(index=index, point=point, key=key,
                               indices=indices))
        return slots

    # -- serial path -----------------------------------------------------------

    def _run_serial(self, slots: list[_Slot],
                    results: list["RunResult | None"],
                    journal: SweepJournal | None) -> None:
        for slot in slots:
            while True:
                started = self.clock()
                try:
                    result = _guarded_attempt(slot.point, slot.attempts + 1,
                                              self.plan.timeout,
                                              self.plan.warm)
                except Exception as exc:
                    cause = (CAUSE_TIMEOUT
                             if isinstance(exc, PointTimeoutError)
                             else CAUSE_ERROR)
                    retrying = self._note_failure(
                        slot, cause, exc, self.clock() - started, journal)
                    if not retrying:
                        break
                    self.sleep(self.plan.backoff_delay(slot.attempts))
                else:
                    self._complete(slot, result, self.clock() - started,
                                   results, journal)
                    break
            if self.plan.strict and slot.last_exception is not None \
                    and results[slot.index] is None:
                # Fail fast: later slots are never attempted.
                break

    # -- parallel path ---------------------------------------------------------

    def _run_parallel(self, slots: list[_Slot],
                      results: list["RunResult | None"],
                      journal: SweepJournal | None, workers: int) -> None:
        plan = self.plan
        hard = (plan.timeout + plan.grace if plan.timeout is not None
                else None)
        #: (ready_at, slot position) — a heap, so backoff delays and
        #: submission order stay deterministic.
        waiting: list[tuple[float, int]] = [
            (0.0, position) for position in range(len(slots))
        ]
        heapq.heapify(waiting)
        inflight: dict[Future, tuple[_Slot, float]] = {}
        aborting = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while waiting or inflight:
                now = self.clock()
                while (waiting and len(inflight) < workers
                        and not aborting and waiting[0][0] <= now):
                    _, position = heapq.heappop(waiting)
                    slot = slots[position]
                    try:
                        future = pool.submit(_guarded_attempt, slot.point,
                                             slot.attempts + 1, plan.timeout,
                                             plan.warm)
                    except BrokenProcessPool:
                        # A worker died between wait() rounds, so the
                        # breakage surfaces here rather than through a
                        # future.  This slot never started: requeue it at
                        # the same attempt count.  The in-flight attempts
                        # are doomed; they pay the crash attempt.
                        heapq.heappush(waiting, (now, position))
                        for doomed in sorted(
                                inflight,
                                key=lambda f: inflight[f][0].index):
                            doomed_slot, started = inflight[doomed]
                            self._note_crash(doomed_slot, None,
                                             self.clock() - started,
                                             journal, waiting, slots,
                                             now=self.clock())
                        inflight.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=workers)
                        break
                    inflight[future] = (slot, now)
                if not inflight:
                    if aborting or not waiting:
                        break
                    self.sleep(max(0.0, waiting[0][0] - self.clock()))
                    continue
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED,
                               timeout=self._wait_budget(waiting, inflight,
                                                         hard))
                pool_broken = False
                for future in sorted(done,
                                     key=lambda f: inflight[f][0].index):
                    slot, started = inflight.pop(future)
                    elapsed = self.clock() - started
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        self._note_crash(slot, exc, elapsed, journal,
                                         waiting, slots,
                                         now=self.clock())
                    except Exception as exc:
                        cause = (CAUSE_TIMEOUT
                                 if isinstance(exc, PointTimeoutError)
                                 else CAUSE_ERROR)
                        if cause == CAUSE_TIMEOUT:
                            self.stats.timeouts += 1
                        self._schedule_or_fail(slot, cause, exc, elapsed,
                                               journal, waiting, slots,
                                               now=self.clock())
                    else:
                        self._complete(slot, result, elapsed, results,
                                       journal)
                if pool_broken:
                    # Every other in-flight future is doomed too: the
                    # pool marks itself broken on any worker death.
                    for future in sorted(
                            inflight,
                            key=lambda f: inflight[f][0].index):
                        slot, started = inflight[future]
                        self._note_crash(slot, None,
                                         self.clock() - started, journal,
                                         waiting, slots, now=self.clock())
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
                elif hard is not None:
                    now = self.clock()
                    expired = [
                        future for future, (slot, started) in
                        inflight.items() if now - started > hard
                    ]
                    if expired:
                        pool = self._hard_kill(pool, workers, inflight,
                                               expired, journal, waiting,
                                               slots)
                if self.plan.strict and any(
                        slot.last_exception is not None
                        and results[slot.index] is None
                        and slot.attempts >= plan.attempts_allowed
                        for slot in slots):
                    # Fail fast: stop feeding the pool, drain what runs.
                    aborting = True
                    waiting.clear()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _wait_budget(self, waiting: list[tuple[float, int]],
                     inflight: dict[Future, tuple[_Slot, float]],
                     hard: float | None) -> float | None:
        """How long the supervisor may block before it must act again."""
        now = self.clock()
        budgets = []
        if waiting:
            budgets.append(waiting[0][0] - now)
        if hard is not None:
            budgets.extend(started + hard - now
                           for _, started in inflight.values())
        if not budgets:
            return None
        return max(0.05, min(budgets))

    def _hard_kill(self, pool: ProcessPoolExecutor, workers: int,
                   inflight: dict[Future, tuple[_Slot, float]],
                   expired: list[Future], journal: SweepJournal | None,
                   waiting: list[tuple[float, int]],
                   slots: list[_Slot]) -> ProcessPoolExecutor:
        """Kill a pool hosting wedged workers; respawn; resubmit.

        The expired points pay a timeout attempt; innocent in-flight
        siblings are resubmitted at their *same* attempt number — their
        work was lost to the kill, not to any fault of their own.
        """
        # ``_processes`` is private but stable across CPython 3.9..3.13;
        # without it the orphaned workers would linger until exit.
        processes = getattr(pool, "_processes", None) or {}
        pool.shutdown(wait=False, cancel_futures=True)
        for process in list(processes.values()):
            process.kill()
        now = self.clock()
        for future in sorted(expired, key=lambda f: inflight[f][0].index):
            slot, started = inflight.pop(future)
            self.stats.timeouts += 1
            self._fire_crash(slot.point.label, slot.key, slot.attempts + 1,
                             CAUSE_TIMEOUT)
            exc = PointTimeoutError(
                f"sweep point {slot.point.label!r} hard-killed after "
                f"{now - started:.1f}s (soft timeout did not fire)"
            )
            self._schedule_or_fail(slot, CAUSE_TIMEOUT, exc, now - started,
                                   journal, waiting, slots, now=now)
        for future in sorted(inflight,
                             key=lambda f: inflight[f][0].index):
            slot, _started = inflight[future]
            position = slots.index(slot)
            heapq.heappush(waiting, (now, position))
        inflight.clear()
        return ProcessPoolExecutor(max_workers=workers)

    # -- shared bookkeeping ----------------------------------------------------

    def _complete(self, slot: _Slot, result: "RunResult", elapsed: float,
                  results: list["RunResult | None"],
                  journal: SweepJournal | None) -> None:
        slot.attempts += 1
        slot.elapsed += elapsed
        slot.last_exception = None
        self.stats.executed += 1
        for index in slot.indices:
            results[index] = result
        if journal is not None:
            journal.record_attempt(slot.key, slot.point.label,
                                   slot.attempts, "done", None, elapsed)
            journal.record_done(slot.key, slot.point.label, result,
                                slot.attempts, slot.elapsed)
        self._fire_point(slot.point.label, slot.key, "done", slot.attempts,
                         slot.elapsed)

    def _note_failure(self, slot: _Slot, cause: str, exc: BaseException,
                      elapsed: float,
                      journal: SweepJournal | None) -> bool:
        """Account one failed attempt; ``True`` if a retry is due."""
        slot.attempts += 1
        slot.elapsed += elapsed
        slot.causes.append(cause)
        slot.last_error = f"{type(exc).__name__}: {exc}"
        slot.last_exception = exc
        if cause == CAUSE_TIMEOUT:
            self.stats.timeouts += 1
        retrying = slot.attempts < self.plan.attempts_allowed
        if journal is not None:
            journal.record_attempt(slot.key, slot.point.label,
                                   slot.attempts,
                                   "retry" if retrying else "failed",
                                   cause, elapsed)
        if retrying:
            self.stats.retries += 1
            self._fire_retry(slot.point.label, slot.key, slot.attempts,
                             cause, self.plan.backoff_delay(slot.attempts))
        else:
            self.stats.failed += 1
            if journal is not None:
                journal.record_failed(slot.key, slot.point.label,
                                      slot.attempts, slot.last_error,
                                      slot.elapsed)
            self._fire_point(slot.point.label, slot.key, "failed",
                             slot.attempts, slot.elapsed)
        return retrying

    def _schedule_or_fail(self, slot: _Slot, cause: str,
                          exc: BaseException, elapsed: float,
                          journal: SweepJournal | None,
                          waiting: list[tuple[float, int]],
                          slots: list[_Slot], *, now: float) -> None:
        """Parallel-path failure accounting: requeue with backoff or give
        up, consuming one attempt either way."""
        # Timeout stats are counted by the callers that know the flavour
        # (soft alarm vs hard kill), so _note_failure must not re-count.
        timeouts_before = self.stats.timeouts
        retrying = self._note_failure(slot, cause, exc, elapsed, journal)
        if cause == CAUSE_TIMEOUT:
            self.stats.timeouts = timeouts_before
        if retrying:
            delay = self.plan.backoff_delay(slot.attempts)
            heapq.heappush(waiting, (now + delay, slots.index(slot)))

    def _note_crash(self, slot: _Slot, exc: BaseException | None,
                    elapsed: float, journal: SweepJournal | None,
                    waiting: list[tuple[float, int]], slots: list[_Slot],
                    *, now: float) -> None:
        """A worker died under (or alongside) this slot's attempt."""
        self.stats.crashes += 1
        self._fire_crash(slot.point.label, slot.key, slot.attempts + 1,
                         CAUSE_CRASH)
        crash_exc: BaseException = exc if exc is not None else \
            SweepExecutionError(
                f"worker process died while sweep point "
                f"{slot.point.label!r} was in flight"
            )
        self._schedule_or_fail(slot, CAUSE_CRASH, crash_exc, elapsed,
                               journal, waiting, slots, now=now)

    def _collect_failures(self, slots: list[_Slot]) -> list[PointFailure]:
        failures = []
        for slot in slots:
            if slot.last_exception is None:
                continue
            if slot.attempts < self.plan.attempts_allowed:
                # Strict-mode abort left this slot mid-budget; it still
                # failed from the caller's point of view.
                pass
            failures.append(PointFailure(
                label=slot.point.label, key=slot.key,
                attempts=slot.attempts, causes=tuple(slot.causes),
                error=slot.last_error, elapsed=slot.elapsed,
            ))
        return failures

    def _raise_strict(self, report: SweepFailureReport,
                      slots: list[_Slot]) -> None:
        """Fail-fast: surface the lowest-index exhausted point's error."""
        exhausted = [slot for slot in slots
                     if slot.last_exception is not None]
        exhausted.sort(key=lambda slot: slot.index)
        slot = exhausted[0]
        exc = slot.last_exception
        label = slot.point.label
        if isinstance(exc, ConfigError):
            raise ConfigError(f"sweep point {label!r}: {exc}") from exc
        if isinstance(exc, SweepExecutionError):
            raise SweepExecutionError(str(exc), report) from None
        if exc is not None and slot.causes \
                and slot.causes[-1] == CAUSE_CRASH:
            raise SweepExecutionError(
                f"sweep point {label!r} lost to a worker crash: {exc}",
                report,
            ) from exc
        assert exc is not None
        raise exc

    # -- hook fire sites -------------------------------------------------------

    def _fire_point(self, label: str, key: str, status: str, attempt: int,
                    elapsed: float) -> None:
        for callback in self.hooks.exec_point:
            callback(label, key, status, attempt, elapsed)

    def _fire_retry(self, label: str, key: str, attempt: int, cause: str,
                    delay: float) -> None:
        for callback in self.hooks.exec_retry:
            callback(label, key, attempt, cause, delay)

    def _fire_crash(self, label: str, key: str, attempt: int,
                    cause: str) -> None:
        for callback in self.hooks.exec_crash:
            callback(label, key, attempt, cause)


def execute_sweep(points: Iterable["SweepPoint"], *,
                  max_workers: int | None = 1,
                  plan: ExecutionPlan | None = None,
                  hooks: HookRegistry | None = None,
                  clock: Callable[[], float] = _monotonic,
                  sleep: Callable[[float], None] = _sleep) -> SweepOutcome:
    """Run a sweep under ``plan``; the module's one-call entry point."""
    executor = ResilientSweepExecutor(plan, max_workers=max_workers,
                                      hooks=hooks, clock=clock, sleep=sleep)
    return executor.execute(points)
