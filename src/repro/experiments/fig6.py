"""Figure 6 harnesses: time-varying hot-spot traffic.

* (a) — the injection-rate profile itself;
* (b) — latency over time for the power-aware network with and without
  transition delays (T_v and T_br zeroed), against the non-power-aware
  network: the voltage-transition penalty should be negligible and the
  bit-rate relock penalty small;
* (c) — latency over time for modulator systems with a single versus three
  optical power levels: the big injection jump forces an optical level
  transition whose 100 us settle shows up as a latency spike;
* (d) — relative power over time for VCSEL- versus modulator-based
  power-aware systems (VCSEL slightly lower everywhere).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import MODULATOR, NetworkConfig, VCSEL
from repro.experiments.configs import (
    ExperimentScale,
    baseline_link_power,
    power_config,
    uniform_saturation_packets,
)
from repro.experiments.runner import TrafficFactory, run_simulation
from repro.metrics.energy import normalise_power_series
from repro.metrics.summary import RunResult
from repro.network.simulator import Simulator
from repro.config import SimulationConfig
from repro.traffic.hotspot import HotspotTraffic, Phase, paper_like_schedule

#: Total span of the paper's hot-spot schedule, cycles (Fig. 6(a)).
PAPER_SCHEDULE_SPAN = 1_800_000


def schedule_for_scale(scale: ExperimentScale) -> tuple[Phase, ...]:
    """The Fig. 6(a) schedule compressed to fit the scale's run length.

    Rates are also scaled to the smaller mesh's saturation point so each
    phase exercises the same fraction of capacity as at paper scale.
    """
    divisor = max(1, math.ceil(PAPER_SCHEDULE_SPAN / scale.run_cycles))
    phases = paper_like_schedule(scale=divisor)
    capacity_ratio = (
        uniform_saturation_packets(scale.network)
        / uniform_saturation_packets(NetworkConfig())
    )
    return tuple(
        Phase(p.start_cycle, p.injection_rate * capacity_ratio)
        for p in phases
    )


def default_hotspot_node(network: NetworkConfig) -> int:
    """The scaled equivalent of the paper's "node 4 in rack(3,5)"."""
    rack_x = min(network.mesh_width - 1,
                 round(3 * network.mesh_width / 8))
    rack_y = min(network.mesh_height - 1,
                 round(5 * network.mesh_height / 8))
    local = min(4, network.nodes_per_cluster - 1)
    router = rack_y * network.mesh_width + rack_x
    return router * network.nodes_per_cluster + local


@dataclass(frozen=True)
class HotspotFactory:
    """Picklable traffic factory for the scaled Fig. 6 hot-spot workload."""

    schedule: tuple[Phase, ...]
    hotspot: int
    hotspot_weight: float = 4.0

    def __call__(self, num_nodes: int, seed: int) -> HotspotTraffic:
        return HotspotTraffic(num_nodes, self.schedule, self.hotspot,
                              hotspot_weight=self.hotspot_weight, seed=seed)


def hotspot_factory(scale: ExperimentScale,
                    hotspot_weight: float = 4.0) -> TrafficFactory:
    """Traffic factory for the scaled Fig. 6 hot-spot workload."""
    return HotspotFactory(
        schedule=schedule_for_scale(scale),
        hotspot=default_hotspot_node(scale.network),
        hotspot_weight=hotspot_weight,
    )


def injection_profile(scale: ExperimentScale, seed: int = 1) -> list[float]:
    """Fig. 6(a): the injection-rate-over-time series actually generated."""
    result = run_simulation(
        scale, None, hotspot_factory(scale),
        label="hotspot/profile", seed=seed,
    )
    return list(result.injection_series)


def transition_delay_ablation(scale: ExperimentScale, seed: int = 1
                              ) -> dict[str, dict]:
    """Fig. 6(b): power-aware latency with vs. without transition delays.

    Returns per-variant dictionaries with the aggregate result and the
    latency-over-time series.
    """
    factory = hotspot_factory(scale)
    variants = {
        "non_power_aware": None,
        "power_aware": power_config(scale, technology=MODULATOR),
        "power_aware_ideal": power_config(scale, technology=MODULATOR,
                                          ideal_transitions=True),
    }
    return {
        name: _run_with_latency_series(scale, power, factory,
                                       label=f"fig6b/{name}", seed=seed)
        for name, power in variants.items()
    }


def optical_level_comparison(scale: ExperimentScale, seed: int = 1
                             ) -> dict[str, dict]:
    """Fig. 6(c): single vs. three optical power levels vs. baseline."""
    factory = hotspot_factory(scale)
    variants = {
        "non_power_aware": None,
        "single_optical_level": power_config(scale, technology=MODULATOR,
                                             optical_levels=1),
        "three_optical_levels": power_config(scale, technology=MODULATOR,
                                             optical_levels=3),
    }
    return {
        name: _run_with_latency_series(scale, power, factory,
                                       label=f"fig6c/{name}", seed=seed)
        for name, power in variants.items()
    }


def technology_power_comparison(scale: ExperimentScale, seed: int = 1
                                ) -> dict[str, dict]:
    """Fig. 6(d): VCSEL vs. modulator relative power over time."""
    factory = hotspot_factory(scale)
    out: dict[str, dict] = {}
    for name, technology in (("vcsel", VCSEL), ("modulator", MODULATOR)):
        power = power_config(scale, technology=technology)
        result = run_simulation(scale, power, factory,
                                label=f"fig6d/{name}", seed=seed)
        baseline_watts = baseline_link_power(scale, power)
        out[name] = {
            "result": result,
            "relative_power_series": normalise_power_series(
                list(result.power_series), baseline_watts
            ),
        }
    return out


def power_over_time_from_trace(trace_path: str) -> list[tuple[int, float]]:
    """Rebuild the Fig. 6(d) ``(cycle, watts)`` series from a trace alone.

    Any run recorded with the ``power`` telemetry kind (``repro run
    --trace out.jsonl``) carries the full power-over-time series in its
    trace file; no simulator state is needed to re-plot it.
    """
    from repro.telemetry.export import iter_trace, power_series_from_trace

    return power_series_from_trace(iter_trace(trace_path))


def relative_power_from_trace(trace_path: str, scale: ExperimentScale,
                              power) -> list[tuple[int, float]]:
    """Fig. 6(d) relative-power-over-time, rebuilt from a JSONL trace.

    Normalises the trace's power samples against the scale's
    non-power-aware baseline (every link at P_max), exactly like
    :func:`technology_power_comparison` does for an in-process run.
    """
    series = power_over_time_from_trace(trace_path)
    return normalise_power_series(series, baseline_link_power(scale, power))


def _run_with_latency_series(scale: ExperimentScale, power,
                             factory: TrafficFactory, *, label: str,
                             seed: int) -> dict:
    """Run and keep both the aggregate result and the latency series."""
    config = SimulationConfig(
        network=scale.network, power=power, seed=seed,
        warmup_cycles=scale.warmup_cycles,
        sample_interval=scale.sample_interval,
    )
    sim = Simulator(config, factory(scale.network.num_nodes, seed))
    sim.run(scale.run_cycles)
    from repro.experiments.runner import collect_result

    result: RunResult = collect_result(sim, label)
    return {
        "result": result,
        "latency_series": sim.stats.latency_series(),
    }
