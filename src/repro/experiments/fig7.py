"""Figure 7 / Table 3 harnesses: SPLASH2-like application traces.

For each benchmark (FFT, LU, Radix) the harness synthesises a trace whose
injection-rate envelope matches the paper's published signature (see
:mod:`repro.traffic.splash`), replays it through the power-aware and the
non-power-aware networks, and reports:

* Fig. 7(a)(c)(e) — the injection-rate-over-time series,
* Fig. 7(b)(d)(f) — the power-aware network's relative power over time,
* Table 3 — normalised latency, power and power-latency product.

The paper runs the modulator-based system here; ``technology`` switches to
VCSEL for the (slightly better) alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import MODULATOR, NetworkConfig
from repro.experiments.configs import (
    ExperimentScale,
    baseline_link_power,
    power_config,
)
from repro.experiments.runner import (
    TrafficFactory,
    pair_points,
    run_pair,
    run_pairs,
)
from repro.metrics.energy import normalise_power_series, smooth_series
from repro.metrics.summary import NormalisedResult, RunResult
from repro.traffic.splash import BENCHMARKS, generate_splash_trace
from repro.traffic.trace import TraceReplaySource

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.experiments.executor import ExecutionPlan

#: The paper's benchmarks run on 64 processors of the 512-node system —
#: "parallelized onto 64 nodes housed in 8 racks" (Section 4.3.3); the
#: other 56 racks sit idle.  That spatial idleness is where most of the
#: >75% power saving comes from.  We place the active racks along the
#: first mesh row (8 racks at paper scale), so inter-rack traffic has a
#: whole row of links to spread over.
_PAPER_ACTIVE_NODES = 64

#: Peak utilisation targeted on the busiest row link at the full bit rate.
#: The published injection-rate axes are not transferable across
#: simulators (RSIM timing vs ours), so the envelope *shape* is kept and
#: its amplitude is calibrated to exercise the same operating region: the
#: active row's centre links peak around half capacity, exactly the regime
#: where the policy has both savings headroom and latency exposure.
_ROW_PEAK_UTILISATION = 0.55

#: Fraction of aggregate row traffic crossing the row's centre link, one
#: direction (uniform traffic over a w-node path: ~w/4 x 1/(w-1) pairs...
#: empirically ~0.25-0.28 for w in 4..8).
_ROW_CENTRE_FRACTION = 0.27

#: Peak of the published envelopes, packets/cycle (fft/lu/radix ~0.3).
_ENVELOPE_PEAK = 0.3


def active_nodes_for(network: NetworkConfig) -> int:
    """Nodes the benchmark occupies: the first row of racks."""
    return network.mesh_width * network.nodes_per_cluster


def splash_intensity(network: NetworkConfig) -> float:
    """Envelope amplitude calibration factor (see _ROW_PEAK_UTILISATION)."""
    from repro.traffic.splash import DATA_FLITS, CONTROL_FLITS, DATA_FRACTION

    mean_flits = DATA_FRACTION * DATA_FLITS + (1 - DATA_FRACTION) * CONTROL_FLITS
    peak_aggregate_flits = _ROW_PEAK_UTILISATION / _ROW_CENTRE_FRACTION
    peak_aggregate_packets = peak_aggregate_flits / mean_flits
    return peak_aggregate_packets / _ENVELOPE_PEAK


@dataclass(frozen=True)
class SplashFactory:
    """Picklable traffic factory replaying a synthesised benchmark trace."""

    benchmark: str
    active: int
    span: int
    intensity: float

    def __call__(self, num_nodes: int, seed: int) -> TraceReplaySource:
        records = generate_splash_trace(
            self.benchmark, self.active, self.span,
            seed=seed, intensity=self.intensity,
        )
        return TraceReplaySource(num_nodes, records)


def splash_factory(benchmark: str, scale: ExperimentScale,
                   duration: int | None = None) -> TrafficFactory:
    """Traffic factory replaying a synthesised benchmark trace.

    The trace spans ~80% of the run budget so the network can drain and
    latency statistics cover every packet.
    """
    span = duration if duration is not None else int(scale.run_cycles * 0.8)
    return SplashFactory(
        benchmark=benchmark,
        active=active_nodes_for(scale.network),
        span=span,
        intensity=splash_intensity(scale.network),
    )


def _assemble_benchmark(benchmark: str, scale: ExperimentScale, power,
                        aware: RunResult, baseline: RunResult,
                        normalised: NormalisedResult) -> dict:
    """Fold one benchmark's run pair into the Fig. 7 + Table 3 record."""
    baseline_watts = baseline_link_power(scale, power)
    return {
        "benchmark": benchmark,
        "aware": aware,
        "baseline": baseline,
        "normalised": normalised,
        "injection_series": list(aware.injection_series),
        "relative_power_series": smooth_series(
            normalise_power_series(list(aware.power_series), baseline_watts),
            window=3,
        ),
    }


def run_benchmark(benchmark: str, scale: ExperimentScale,
                  technology: str = MODULATOR, seed: int = 1) -> dict:
    """One benchmark's full Fig. 7 + Table 3 data."""
    if benchmark not in BENCHMARKS:
        raise ValueError(f"unknown benchmark {benchmark!r}")
    factory = splash_factory(benchmark, scale)
    power = power_config(scale, technology=technology)
    # The trace spans ~80% of the run budget; draining the tail of the
    # last phase through a scaled-down network can take a while longer.
    aware, baseline, normalised = run_pair(
        scale, power, factory,
        label=f"splash/{benchmark}", seed=seed, drain=True,
        cycles=2 * scale.run_cycles,
    )
    return _assemble_benchmark(benchmark, scale, power,
                               aware, baseline, normalised)


def run_all_benchmarks(scale: ExperimentScale, technology: str = MODULATOR,
                       seed: int = 1, *,
                       max_workers: int | None = 1,
                       execution: "ExecutionPlan | None" = None
                       ) -> dict[str, dict]:
    """Fig. 7 for all three benchmarks.

    With ``max_workers`` > 1 (or ``None`` for one worker per CPU) the six
    underlying runs — a (power-aware, baseline) pair per benchmark —
    execute across a process pool, point-for-point identical to serial.
    Under a degraded execution plan a benchmark with a failed side is
    omitted from the returned mapping.
    """
    power = power_config(scale, technology=technology)
    points = []
    for benchmark in BENCHMARKS:
        points.extend(pair_points(
            scale, power, splash_factory(benchmark, scale),
            label=f"splash/{benchmark}", seed=seed, drain=True,
            cycles=2 * scale.run_cycles,
        ))
    triples = run_pairs(points, max_workers=max_workers,
                        execution=execution)
    return {
        benchmark: _assemble_benchmark(benchmark, scale, power, *triple)
        for benchmark, triple in zip(BENCHMARKS, triples)
        if triple is not None
    }


def table3_rows(results: dict[str, dict]) -> list[dict[str, float | str]]:
    """Table 3: normalised latency / power / PLP per benchmark."""
    rows = []
    for benchmark, data in results.items():
        normalised: NormalisedResult = data["normalised"]
        rows.append(
            {
                "trace": benchmark.upper(),
                "latency_ratio": normalised.latency_ratio,
                "power_ratio": normalised.power_ratio,
                "power_latency_product": normalised.power_latency_product,
            }
        )
    return rows


def mean_power_savings(results: dict[str, dict]) -> float:
    """Average power saving across benchmarks (the paper's ">75%" claim)."""
    ratios = [data["normalised"].power_ratio for data in results.values()]
    return 1.0 - sum(ratios) / len(ratios)


def aware_result(results: dict[str, dict], benchmark: str) -> RunResult:
    """Convenience accessor used by tests and the report generator."""
    return results[benchmark]["aware"]
