"""EXPERIMENTS.md generator: run every table/figure and record the shapes.

Usage::

    python -m repro.experiments.report --scale bench --out EXPERIMENTS.md

Runs the Table 2 cross-check and the Fig. 5/6/7 + Table 3 harnesses at the
chosen scale and writes a markdown report comparing each measured shape
against the paper's claims.  The ``smoke`` scale finishes in a couple of
minutes; ``bench`` takes ~15 minutes; ``paper`` reproduces the full-size
system and is an overnight run.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

from repro.experiments import ablation, fig5, fig6, fig7, table2, table3
from repro.experiments.configs import get_scale
from repro.experiments.throughput import measure_throughput
from repro.metrics.latency import zero_load_latency


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:  # NaN
        return "nan"
    return f"{value:.{digits}f}"


def markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_table2() -> str:
    rows = [
        [r["component"], r["power_mw"], r["trend"]]
        for r in table2.trend_model_rows()
    ]
    problems = table2.verify_against_paper()
    totals = table2.link_totals()
    parts = [
        "## Table 2 — link component power and scaling trends",
        "",
        markdown_table(["component", "power @10G (mW)", "scaling trend"], rows),
        "",
        f"- VCSEL link: {_fmt(totals['vcsel_at_10g_mw'], 1)} mW @10G -> "
        f"{_fmt(totals['vcsel_at_5g_mw'], 1)} mW @5G "
        f"({_fmt(100 * totals['vcsel_savings_at_5g'], 1)}% saving; paper: "
        "290 -> ~61 mW, ~80%).",
        f"- Modulator link: {_fmt(totals['modulator_at_10g_mw'], 1)} mW @10G "
        f"-> {_fmt(totals['modulator_at_5g_mw'], 1)} mW @5G.",
        f"- Cross-check vs paper: "
        f"{'OK' if not problems else '; '.join(problems)}",
    ]
    return "\n".join(parts)


def render_sweep(sweeps, x_name: str, title: str, note: str) -> str:
    parts = [f"## {title}", "", note, ""]
    for load, series in sweeps.items():
        rows = [
            [
                _fmt(x, 0) if x >= 1 else _fmt(x, 2),
                _fmt(r.latency_ratio),
                _fmt(r.power_ratio),
                _fmt(r.power_latency_product),
            ]
            for x, r in zip(series.x_values, series.results)
        ]
        parts.append(f"### load: {load}")
        parts.append(
            markdown_table(
                [x_name, "latency ratio", "power ratio", "PLP"], rows
            )
        )
        parts.append("")
    return "\n".join(parts)


def render_injection(curves, scale) -> str:
    parts = [
        "## Fig 5(g)(h) — latency and power vs injection rate",
        "",
        "Latency is mean cycles (g); power is relative to non-power-aware "
        "(h).  Each curve's throughput uses its own zero-load reference "
        "(an idle power-aware network sits at its minimum bit rate).",
        "",
    ]
    configurations = fig5.ladder_configurations(scale)
    for name, points in curves.items():
        rows = [
            [
                _fmt(rate, 2),
                _fmt(result.mean_latency, 1),
                _fmt(result.relative_power),
            ]
            for rate, result in points
        ]
        power = configurations.get(name)
        if power is not None:
            service = scale.network.flit_service_time(power.min_bit_rate,
                                                      power.max_bit_rate)
        else:
            service = 1.0
        zero_load = zero_load_latency(scale.network, packet_size=5,
                                      service_time=service)
        throughput = fig5.throughput_of_curve(points, zero_load)
        parts.append(f"### {name} (throughput >= {_fmt(throughput, 2)} pkt/cyc)")
        parts.append(
            markdown_table(["rate (pkt/cyc)", "latency (cyc)", "rel. power"],
                           rows)
        )
        parts.append("")
    return "\n".join(parts)


def render_fig6(ablation, optical, tech) -> str:
    parts = ["## Fig 6 — time-varying hot-spot traffic", ""]
    rows = []
    for name, data in ablation.items():
        result = data["result"]
        rows.append([name, _fmt(result.mean_latency, 1),
                     _fmt(result.relative_power)])
    parts += [
        "### (b) transition-delay ablation",
        markdown_table(["variant", "mean latency (cyc)", "rel. power"], rows),
        "",
    ]
    rows = []
    for name, data in optical.items():
        result = data["result"]
        rows.append([name, _fmt(result.mean_latency, 1),
                     _fmt(result.relative_power)])
    parts += [
        "### (c) optical power levels",
        markdown_table(["variant", "mean latency (cyc)", "rel. power"], rows),
        "",
    ]
    rows = []
    for name, data in tech.items():
        result = data["result"]
        series = data["relative_power_series"]
        mean_rel = (sum(v for _, v in series) / len(series)) if series else math.nan
        rows.append([name, _fmt(result.relative_power),
                     _fmt(mean_rel)])
    parts += [
        "### (d) VCSEL vs modulator power",
        markdown_table(["technology", "rel. power (energy)",
                        "rel. power (sampled mean)"], rows),
        "",
    ]
    return "\n".join(parts)


def render_fig7(results) -> str:
    parts = ["## Fig 7 / Table 3 — SPLASH2-like traces", ""]
    rows = []
    for row in fig7.table3_rows(results):
        rows.append([
            str(row["trace"]),
            _fmt(float(row["latency_ratio"]), 2),
            _fmt(float(row["power_ratio"]), 2),
            _fmt(float(row["power_latency_product"]), 2),
        ])
    parts.append(markdown_table(
        ["trace", "latency ratio", "power ratio", "PLP"], rows))
    paper_rows = [
        [trace, _fmt(lat, 2), _fmt(pwr, 2), _fmt(plp, 2)]
        for trace, (lat, pwr, plp) in table3.PAPER_TABLE3.items()
    ]
    parts += [
        "",
        "Paper Table 3 for comparison:",
        markdown_table(["trace", "latency ratio", "power ratio", "PLP"],
                       paper_rows),
        "",
        f"- Mean power saving: "
        f"{_fmt(100 * fig7.mean_power_savings(results), 1)}% "
        "(paper: >75%).",
        f"- Shape check: "
        f"{'OK' if not table3.shape_check(fig7.table3_rows(results)) else table3.shape_check(fig7.table3_rows(results))}",
        "",
        "Known gap: our latency ratios run ~0.5-0.8 above the paper's. "
        "The power ratios and the FFT-lowest ordering reproduce; the "
        "absolute latency gap traces to the traces themselves — the "
        "authors' RSIM captures are unavailable, and synthetic envelopes "
        "cannot reproduce the exact burst microstructure that determines "
        "how much queueing the baseline network absorbs (a burstier "
        "baseline inflates the denominator).  See DESIGN.md Section 7, "
        "item 6.",
    ]
    return "\n".join(parts)


def render_ablation(scale, seed: int) -> str:
    results = ablation.run_ablation(scale, load="medium", seed=seed)
    rows = [
        [name,
         _fmt(result.mean_latency, 1),
         _fmt(result.relative_power),
         _fmt(result.delivery_fraction)]
        for name, result in results.items()
    ]
    return "\n".join([
        "## Ablation — policy stabilisers (DESIGN.md Section 7)",
        "",
        "Medium uniform load; `paper_literal` is Table 1 with busy-time Lu "
        "and no guards.  Expected shape: the full policy delivers ~all "
        "offered traffic at the lowest latency; removing pressure-aware "
        "utilisation costs the most.",
        "",
        markdown_table(
            ["variant", "latency (cyc)", "rel. power", "delivered"], rows
        ),
        "",
    ])


def render_throughput(scale, seed: int) -> str:
    from repro.experiments.configs import (
        power_config,
        static_rate_config,
        uniform_saturation_packets,
    )

    cycles = max(5000, scale.run_cycles // 6)
    variants = {
        "non_power_aware": None,
        "pa_vcsel_5_10": power_config(scale),
        "pa_vcsel_3.3_10": power_config(scale, min_bit_rate=3.3e9),
        "static_3.3": static_rate_config(scale, 3.3e9),
    }
    rows = []
    for name, power in variants.items():
        measured = measure_throughput(scale, power, seed=seed, cycles=cycles,
                                      max_iterations=5)
        rows.append([name, _fmt(measured, 2)])
    ceiling = uniform_saturation_packets(scale.network)
    return "\n".join([
        "## Throughput (paper Section 4.1 metric, supports Fig 5(g))",
        "",
        f"Bisection for the rate where latency crosses 2x zero-load; "
        f"theoretical bisection ceiling {_fmt(ceiling, 2)} pkt/cyc.",
        "",
        markdown_table(["network", "throughput (pkt/cyc)"], rows),
        "",
    ])


def generate_report(scale_name: str = "bench", seed: int = 1) -> str:
    """Run every experiment at a scale and return the markdown report."""
    scale = get_scale(scale_name)
    started = time.time()
    sections = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated by `python -m repro.experiments.report --scale "
        f"{scale_name}`.",
        "",
        f"Scale preset: **{scale.name}** — "
        f"{scale.network.mesh_width}x{scale.network.mesh_height} mesh, "
        f"{scale.network.nodes_per_cluster} nodes/rack, "
        f"{scale.run_cycles} cycles/run, slow time constants divided by "
        f"{scale.slow_constant_divisor}.  The paper's absolute numbers come "
        "from a 8x8x8 system over 10^6+ cycles; at reduced scale we compare "
        "*shapes* (who wins, by what factor, where crossovers fall).",
        "",
        render_table2(),
        "",
    ]
    sections.append(render_sweep(
        fig5.window_size_sweep(scale, seed=seed), "Tw",
        "Fig 5(a)(b)(c) — window-size sweep (uniform random)",
        "Expected shape: the shortest Tw hurts latency at medium/heavy "
        "load; Tw around the preset default is the compromise.  Scaled-run "
        "caveat: at reduced run lengths the largest windows also show "
        "*higher power* because the descent to the ladder bottom does not "
        "complete within the run — at paper scale (10^6 cycles) that "
        "start-up fraction vanishes and the short-window transition "
        "overhead dominates, matching the paper's power trend.",
    ))
    sections.append(render_sweep(
        fig5.threshold_sweep(scale, seed=seed), "avg threshold",
        "Fig 5(d)(e)(f) — utilisation-threshold sweep (uniform random)",
        "Expected shape: higher thresholds lower power and raise latency at "
        "medium load; light and saturated loads are insensitive.",
    ))
    sections.append(render_injection(fig5.injection_sweep(scale, seed=seed),
                                     scale))
    sections.append(render_fig6(
        fig6.transition_delay_ablation(scale, seed=seed),
        fig6.optical_level_comparison(scale, seed=seed),
        fig6.technology_power_comparison(scale, seed=seed),
    ))
    sections.append(render_fig7(fig7.run_all_benchmarks(scale, seed=seed)))
    sections.append(render_ablation(scale, seed))
    sections.append(render_throughput(scale, seed))
    sections.append(
        f"\n_Total generation time: {time.time() - started:.0f} s._\n"
    )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    report = generate_report(args.scale, args.seed)
    Path(args.out).write_text(report, encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
