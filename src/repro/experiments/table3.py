"""Table 3 harness: power-performance of the SPLASH2-like traces.

Table 3 aggregates the Fig. 7 runs: normalised average latency, power and
power-latency product for FFT, LU and Radix on the power-aware network.
Paper values for comparison:

============  =========  ======  ======
Trace         FFT        LU      Radix
============  =========  ======  ======
Latency       1.08       1.50    1.60
Power         0.22       0.25    0.23
PLP           0.24       0.38    0.37
============  =========  ======  ======
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import MODULATOR
from repro.experiments.configs import ExperimentScale
from repro.experiments.fig7 import run_all_benchmarks, table3_rows

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.experiments.executor import ExecutionPlan

#: Paper Table 3: trace -> (latency ratio, power ratio, PLP).
PAPER_TABLE3 = {
    "FFT": (1.08, 0.22, 0.24),
    "LU": (1.50, 0.25, 0.38),
    "RADIX": (1.60, 0.23, 0.37),
}


def compute_table3(scale: ExperimentScale, technology: str = MODULATOR,
                   seed: int = 1, *, max_workers: int | None = 1,
                   execution: "ExecutionPlan | None" = None
                   ) -> list[dict[str, float | str]]:
    """Run all three benchmarks and return the Table 3 rows.

    Under a degraded execution plan, a benchmark whose pair failed is
    simply absent from the table (``shape_check`` handles partial rows).
    """
    results = run_all_benchmarks(scale, technology=technology, seed=seed,
                                 max_workers=max_workers,
                                 execution=execution)
    return table3_rows(results)


def shape_check(rows: list[dict[str, float | str]]) -> list[str]:
    """Validate the qualitative claims Table 3 supports.

    * every trace saves most of the link power (power ratio well below 0.5),
    * latency cost stays below 2x,
    * FFT has the lowest latency penalty (its traffic varies slowly, so the
      policy predicts it best),
    * PLP improves for every trace.

    Returns a list of violated claims (empty = shape reproduced).
    """
    problems: list[str] = []
    by_trace = {str(row["trace"]): row for row in rows}
    for trace, row in by_trace.items():
        if float(row["power_ratio"]) >= 0.5:
            problems.append(
                f"{trace}: power ratio {row['power_ratio']:.2f} >= 0.5"
            )
        if float(row["latency_ratio"]) >= 2.5:
            problems.append(
                f"{trace}: latency ratio {row['latency_ratio']:.2f} >= 2.5"
            )
        if float(row["power_latency_product"]) >= 1.0:
            problems.append(
                f"{trace}: PLP {row['power_latency_product']:.2f} >= 1"
            )
    if "FFT" in by_trace:
        fft_latency = float(by_trace["FFT"]["latency_ratio"])
        for other in ("LU", "RADIX"):
            if other in by_trace and \
                    fft_latency > float(by_trace[other]["latency_ratio"]) + 0.05:
                problems.append(
                    f"FFT latency ratio {fft_latency:.2f} not lowest "
                    f"(vs {other})"
                )
    return problems
