"""Fault sweep: reliability cost vs. receiver optical power margin.

The reliability subsystem makes the paper's power knob two-sided: less
optical power at the receiver saves energy but erodes the BER margin, and
the link-level retransmission protocol converts the lost margin into
retries, latency and retry energy.  This sweep runs the same workload at
a descending series of received powers and reports where the goodput
cliff sits.

At the paper's nominal operating point (25 uW at 10 Gb/s) the BER is the
1e-12 design target and essentially nothing corrupts; by ~13 uW the
per-flit error probability reaches O(1e-3) and retransmissions become
visible in both latency and energy.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.experiments.configs import (
    ExperimentScale,
    power_config,
    reference_rates,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import (
    RunResult,
    SweepPoint,
    derive_seed,
    run_sweep,
)
from repro.metrics.ascii import format_table
from repro.reliability.config import FaultConfig
from repro.units import uw

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.experiments.executor import ExecutionPlan

#: Received optical powers swept, microwatts.  25 uW is the paper's
#: receiver sensitivity at 10 Gb/s; the tail values walk down the margin
#: until the retransmission protocol visibly works for a living.
DEFAULT_RECEIVED_POWERS_UW: tuple[float, ...] = (25.0, 20.0, 16.0, 13.0)


def margin_sweep_points(scale: ExperimentScale, *, seed: int = 1,
                        received_powers_uw: Sequence[float] =
                        DEFAULT_RECEIVED_POWERS_UW,
                        rate: float | None = None) -> list[SweepPoint]:
    """One power-aware run per received-power operating point."""
    power = power_config(scale)
    if rate is None:
        rate = reference_rates(scale.network)["light"]
    factory = uniform_factory(rate)
    points = []
    for rx_uw in received_powers_uw:
        faults = FaultConfig(
            seed=derive_seed(seed, "faultsweep", rx_uw),
            received_power_w=uw(rx_uw),
        )
        points.append(SweepPoint(
            label=f"faults/rx{rx_uw:g}uW",
            scale=scale,
            power=power,
            traffic_factory=factory,
            seed=seed,
            faults=faults,
        ))
    return points


def run_margin_sweep(scale: ExperimentScale, *, seed: int = 1,
                     received_powers_uw: Sequence[float] =
                     DEFAULT_RECEIVED_POWERS_UW,
                     rate: float | None = None,
                     max_workers: int | None = 1,
                     execution: "ExecutionPlan | None" = None
                     ) -> list[tuple[float, RunResult]]:
    """Run the sweep; returns (received power uW, result) in point order.

    Under a degraded execution plan, failed operating points are dropped
    from the returned series (the table renders whatever survived).
    """
    points = margin_sweep_points(
        scale, seed=seed, received_powers_uw=received_powers_uw, rate=rate,
    )
    results = run_sweep(points, max_workers=max_workers,
                        execution=execution)
    return [(rx_uw, result)
            for rx_uw, result in zip(received_powers_uw, results)
            if result is not None]


def margin_sweep_table(results: Sequence[tuple[float, RunResult]]) -> str:
    """Render the sweep as the CLI's table."""
    rows = []
    for rx_uw, result in results:
        rel = result.reliability
        rows.append([
            f"{rx_uw:g}",
            str(rel.flits_corrupted),
            str(rel.flits_retransmitted),
            str(rel.flits_dropped),
            f"{rel.effective_goodput:.4f}",
            f"{result.mean_latency:.1f}",
            f"{result.relative_power:.3f}",
        ])
    return format_table(
        ["rx (uW)", "corrupted", "retransmitted", "dropped",
         "goodput", "latency (cyc)", "rel power"],
        rows,
    )
