"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`~repro.experiments.table2` — component power budget (analytic);
* :mod:`~repro.experiments.fig5` — uniform-random sweeps (window size,
  thresholds, injection rate);
* :mod:`~repro.experiments.fig6` — time-varying hot-spot experiments
  (transition-delay ablation, optical levels, VCSEL vs modulator);
* :mod:`~repro.experiments.fig7` — SPLASH2-like trace replays;
* :mod:`~repro.experiments.table3` — normalised power-performance table;
* :mod:`~repro.experiments.report` — ``python -m repro.experiments.report``
  regenerates EXPERIMENTS.md.

Shared machinery: :mod:`~repro.experiments.configs` (scales, reference
rates) and :mod:`~repro.experiments.runner` (run + normalise).
"""

from repro.experiments.configs import (
    SCALES,
    ExperimentScale,
    get_scale,
    power_config,
    reference_rates,
    static_rate_config,
    uniform_saturation_packets,
)
from repro.experiments.runner import (
    TrafficFactory,
    build_simulator,
    collect_result,
    run_pair,
    run_simulation,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "TrafficFactory",
    "build_simulator",
    "collect_result",
    "get_scale",
    "power_config",
    "reference_rates",
    "run_pair",
    "run_simulation",
    "static_rate_config",
    "uniform_saturation_packets",
]
