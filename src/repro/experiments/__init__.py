"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`~repro.experiments.table2` — component power budget (analytic);
* :mod:`~repro.experiments.fig5` — uniform-random sweeps (window size,
  thresholds, injection rate);
* :mod:`~repro.experiments.fig6` — time-varying hot-spot experiments
  (transition-delay ablation, optical levels, VCSEL vs modulator);
* :mod:`~repro.experiments.fig7` — SPLASH2-like trace replays;
* :mod:`~repro.experiments.table3` — normalised power-performance table;
* :mod:`~repro.experiments.report` — ``python -m repro.experiments.report``
  regenerates EXPERIMENTS.md.

Shared machinery: :mod:`~repro.experiments.configs` (scales, reference
rates), :mod:`~repro.experiments.runner` (run + normalise) and
:mod:`~repro.experiments.executor` (fault-tolerant sweep execution:
journaled resume, per-point timeouts/retries, worker-crash recovery —
see docs/execution.md).
"""

from repro.experiments.configs import (
    SCALES,
    ExperimentScale,
    get_scale,
    power_config,
    reference_rates,
    static_rate_config,
    uniform_saturation_packets,
)
from repro.experiments.executor import (
    ExecutionPlan,
    ExecutorStats,
    PointFailure,
    SweepFailureReport,
    SweepOutcome,
    execute_sweep,
)
from repro.experiments.journal import SweepJournal, point_key
from repro.experiments.runner import (
    TrafficFactory,
    build_simulator,
    collect_result,
    run_pair,
    run_simulation,
)

__all__ = [
    "ExecutionPlan",
    "ExecutorStats",
    "ExperimentScale",
    "PointFailure",
    "SCALES",
    "SweepFailureReport",
    "SweepJournal",
    "SweepOutcome",
    "TrafficFactory",
    "build_simulator",
    "collect_result",
    "execute_sweep",
    "get_scale",
    "point_key",
    "power_config",
    "reference_rates",
    "run_pair",
    "run_simulation",
    "static_rate_config",
    "uniform_saturation_packets",
]
