"""Chaos injection for the sweep executor's fault-tolerance tests.

The execution harness claims to survive worker crashes, hangs and
out-of-memory failures.  Claims like that rot unless the failure modes
are reproducible on demand, so :func:`maybe_inject` sits at the top of
:func:`~repro.experiments.runner.run_point` and — **only** when the
``REPRO_CHAOS`` environment variable is set — sabotages matching points:

* ``crash`` — ``SIGKILL`` the executing process (a worker dying takes
  the whole ``ProcessPoolExecutor`` down as ``BrokenProcessPool``);
* ``hang`` — sleep far past any reasonable timeout.  Interruptible by
  the executor's ``SIGALRM`` soft-timeout guard, so this exercises the
  in-worker timeout path;
* ``hang_hard`` — block ``SIGALRM`` first, then sleep: immune to the
  soft guard, so only the supervisor's hard-deadline pool kill can
  recover.  Exercises the kill-and-respawn path;
* ``oom`` — raise :class:`MemoryError` (simulated: nothing is actually
  allocated, the executor cannot tell the difference);
* ``error`` — raise a plain :class:`RuntimeError`, the generic
  retry-path probe.

Spec grammar (the env var's value)::

    directive[;directive...]
    directive = mode[*times]:label

``label`` is compared *exactly* against the sweep point's label (labels
routinely contain ``=``, ``/``, ``@`` and ``,``, so ``;`` separates
directives and only the first ``:`` splits mode from label).  ``times``
bounds injection to attempts ``<= times`` (default 1), so a point that
crashes on its first attempt succeeds on retry — exactly the recovery
the tests need to prove.

The environment is read per call, which costs one dict lookup when chaos
is off; parsing is memoised on the spec string.  Worker processes
inherit the parent's environment at pool creation, so setting the
variable before building the executor reaches every worker.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigError

#: The environment variable carrying the chaos spec.
ENV_VAR = "REPRO_CHAOS"

#: Seconds a ``hang``/``hang_hard`` directive sleeps: far beyond any
#: sane per-point timeout, so an unguarded hang is unmistakable.
HANG_SECONDS = 3600.0

#: The sabotage modes :func:`maybe_inject` implements.
MODES = ("crash", "hang", "hang_hard", "oom", "error")


@dataclass(frozen=True)
class ChaosDirective:
    """One sabotage order: ``mode`` against ``label``, first ``times``
    attempts only."""

    mode: str
    label: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown chaos mode {self.mode!r}; known: {MODES}"
            )
        if self.times < 1:
            raise ConfigError(
                f"chaos times must be >= 1, got {self.times!r}"
            )
        if not self.label:
            raise ConfigError("chaos directive needs a point label")

    def matches(self, label: str, attempt: int) -> bool:
        return label == self.label and attempt <= self.times


def parse_chaos_spec(spec: str) -> tuple[ChaosDirective, ...]:
    """Parse a ``REPRO_CHAOS`` value into directives.

    >>> parse_chaos_spec("crash:baseline/light")
    (ChaosDirective(mode='crash', label='baseline/light', times=1),)
    >>> parse_chaos_spec("hang*2:Tw=100/heavy;oom:T=0.5/light")[0].times
    2
    """
    directives = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        head, sep, label = part.partition(":")
        if not sep:
            raise ConfigError(
                f"malformed chaos directive {part!r}: expected "
                "'mode[*times]:label'"
            )
        mode, star, times_text = head.partition("*")
        if star:
            try:
                times = int(times_text)
            except ValueError:
                raise ConfigError(
                    f"malformed chaos repeat count {times_text!r} "
                    f"in {part!r}"
                ) from None
        else:
            times = 1
        directives.append(ChaosDirective(mode=mode.strip(), label=label,
                                         times=times))
    if not directives:
        raise ConfigError(f"empty chaos spec {spec!r}")
    return tuple(directives)


@lru_cache(maxsize=8)
def _cached_plan(spec: str) -> tuple[ChaosDirective, ...]:
    return parse_chaos_spec(spec)


def maybe_inject(label: str, attempt: int) -> None:
    """Sabotage the current point if the environment orders it.

    Called at the top of ``run_point``; a no-op (one ``environ`` lookup)
    unless :data:`ENV_VAR` is set.  ``crash`` never returns; ``hang`` /
    ``hang_hard`` return only if something interrupts the sleep; the
    other modes raise.
    """
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    for directive in _cached_plan(spec):
        if directive.matches(label, attempt):
            _execute(directive, label, attempt)


def _execute(directive: ChaosDirective, label: str, attempt: int) -> None:
    mode = directive.mode
    if mode == "crash":
        # A real worker death: no exception, no cleanup, no unpickle.
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(HANG_SECONDS)
    elif mode == "hang_hard":
        # Immunise against the executor's in-worker SIGALRM guard, then
        # hang: only the supervisor's hard-deadline kill gets us out.
        if hasattr(signal, "pthread_sigmask"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        time.sleep(HANG_SECONDS)
    elif mode == "oom":
        raise MemoryError(
            f"chaos oom injected into {label!r} (attempt {attempt})"
        )
    else:
        raise RuntimeError(
            f"chaos error injected into {label!r} (attempt {attempt})"
        )
