"""The sweep journal: a persistent, crash-safe record of sweep points.

A sweep at paper scale is thousands of multi-minute points; losing the
lot to one killed worker (or one Ctrl-C) is unacceptable.  The journal
makes sweep execution *resumable*: every completed point is committed to
SQLite the moment its result arrives, keyed by a **content hash** of the
point itself, so

* an interrupted sweep picks up exactly where it stopped — completed
  points load from the journal and are never re-run;
* identical points *across* sweeps (the Fig. 5 harnesses share baseline
  points between window and threshold sweeps, for example) hit the
  journal as a cache;
* results served from the journal are bit-identical to fresh runs: the
  JSON round-trip is exact (Python float repr survives JSON) and is
  regression-tested.

Hashing contract
----------------
:func:`point_key` canonicalises the frozen :class:`~repro.experiments.
runner.SweepPoint` dataclass recursively — every field, including the
label, the full nested config tree and the explicit per-point seed —
into a deterministic JSON document and hashes it with SHA-256.  Only
dataclasses, primitives, tuples/lists and string-keyed dicts are
hashable; anything else (a lambda traffic factory, say) raises
:class:`~repro.errors.ConfigError` naming the offending point, because a
value the journal cannot canonicalise is also a value whose identity it
cannot trust across processes.

Two tables: ``points`` is the materialised view (one row per key, upserted
on completion), ``attempts`` is the append-only audit log (one row per
execution attempt, including the failed ones).  Writes commit
immediately — a SIGKILL between points loses nothing, a SIGKILL *during*
a write loses at most that row to SQLite's rollback journal.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.metrics.io import result_from_dict, result_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.experiments.runner import SweepPoint
    from repro.metrics.summary import RunResult

#: Bump when the journal layout or the hashing contract changes; a
#: mismatching journal is rejected rather than silently misread.
JOURNAL_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    key TEXT PRIMARY KEY,
    label TEXT NOT NULL,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    elapsed REAL NOT NULL,
    result TEXT,
    error TEXT
);
CREATE TABLE IF NOT EXISTS attempts (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    key TEXT NOT NULL,
    label TEXT NOT NULL,
    attempt INTEGER NOT NULL,
    outcome TEXT NOT NULL,
    cause TEXT,
    elapsed REAL NOT NULL
);
"""


def _canonical(value: Any, *, context: str) -> Any:
    """A JSON-ready, deterministic projection of a sweep-point value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item, context=context) for item in value]
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigError(
                    f"{context}: journal hashing needs string dict keys, "
                    f"got {key!r}"
                )
            out[key] = _canonical(item, context=context)
        return out
    if is_dataclass(value) and not isinstance(value, type):
        record: dict[str, Any] = {
            "__type__": f"{type(value).__module__}."
                        f"{type(value).__qualname__}",
        }
        for field in fields(value):
            record[field.name] = _canonical(getattr(value, field.name),
                                            context=context)
        return record
    raise ConfigError(
        f"{context}: cannot content-hash a {type(value).__qualname__} for "
        "the sweep journal — points must be built from dataclasses, "
        "primitives and tuples (use a frozen-dataclass traffic factory, "
        "not a closure)"
    )


def point_key(point: "SweepPoint") -> str:
    """The content hash identifying ``point`` in the journal.

    Covers every field of the point — config tree, traffic factory,
    seed, cycle budget, label — so two points collide only when they
    would provably produce the same :class:`RunResult`.

    The hash is cached on the point after the first call (the executor
    and the journal both key by it, per attempt and per retry).  A
    ``SweepPoint`` is a frozen dataclass without slots, so the cache
    slips into ``__dict__`` via ``object.__setattr__`` — invisible to
    ``dataclasses.fields()`` and therefore to the hash payload and to
    dataclass equality.  The hash is pure content, so a cached value
    travelling to a worker via pickle equals what the worker would
    re-derive (unit-tested across processes).
    """
    cached: str | None = getattr(point, "_point_key", None)
    if cached is not None:
        return cached
    payload = _canonical(point, context=f"sweep point {point.label!r}")
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(text.encode("utf-8")).hexdigest()
    object.__setattr__(point, "_point_key", key)
    return key


class SweepJournal:
    """One sweep journal file; the supervisor process is the only writer."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT v FROM meta WHERE k = 'schema_version'").fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (k, v) VALUES ('schema_version', ?)",
                (str(JOURNAL_SCHEMA_VERSION),))
            self._conn.commit()
        elif int(row[0]) != JOURNAL_SCHEMA_VERSION:
            self._conn.close()
            raise ConfigError(
                f"journal {self.path} has schema version {row[0]}, "
                f"this build writes {JOURNAL_SCHEMA_VERSION}"
            )

    # -- reads -----------------------------------------------------------------

    def get(self, key: str) -> "RunResult | None":
        """The completed result stored under ``key``, if any.

        Failed entries return ``None`` — a resumed sweep retries them
        from scratch rather than trusting a stale failure.
        """
        row = self._conn.execute(
            "SELECT result FROM points WHERE key = ? AND status = 'done'",
            (key,)).fetchone()
        if row is None or row[0] is None:
            return None
        return result_from_dict(json.loads(row[0]))

    def counts(self) -> dict[str, int]:
        """Point rows per status (``done`` / ``failed``)."""
        return dict(self._conn.execute(
            "SELECT status, COUNT(*) FROM points GROUP BY status"))

    def failures(self) -> list[dict[str, Any]]:
        """Failed points: label, attempts, last error, elapsed seconds."""
        rows = self._conn.execute(
            "SELECT key, label, attempts, error, elapsed FROM points "
            "WHERE status = 'failed' ORDER BY label").fetchall()
        return [
            {"key": key, "label": label, "attempts": attempts,
             "error": error, "elapsed": elapsed}
            for key, label, attempts, error, elapsed in rows
        ]

    def attempt_log(self, key: str | None = None) -> list[dict[str, Any]]:
        """The append-only attempt audit trail (optionally one point's)."""
        query = ("SELECT key, label, attempt, outcome, cause, elapsed "
                 "FROM attempts")
        args: tuple[Any, ...] = ()
        if key is not None:
            query += " WHERE key = ?"
            args = (key,)
        rows = self._conn.execute(query + " ORDER BY id", args).fetchall()
        return [
            {"key": k, "label": label, "attempt": attempt,
             "outcome": outcome, "cause": cause, "elapsed": elapsed}
            for k, label, attempt, outcome, cause, elapsed in rows
        ]

    # -- writes ----------------------------------------------------------------

    def record_attempt(self, key: str, label: str, attempt: int,
                       outcome: str, cause: str | None,
                       elapsed: float) -> None:
        """Append one attempt to the audit log (committed immediately)."""
        self._conn.execute(
            "INSERT INTO attempts (key, label, attempt, outcome, cause, "
            "elapsed) VALUES (?, ?, ?, ?, ?, ?)",
            (key, label, attempt, outcome, cause, elapsed))
        self._conn.commit()

    def record_done(self, key: str, label: str, result: "RunResult",
                    attempts: int, elapsed: float) -> None:
        """Commit a completed point (idempotent on re-runs of equal work)."""
        payload = json.dumps(result_to_dict(result))
        self._conn.execute(
            "INSERT OR REPLACE INTO points "
            "(key, label, status, attempts, elapsed, result, error) "
            "VALUES (?, ?, 'done', ?, ?, ?, NULL)",
            (key, label, attempts, elapsed, payload))
        self._conn.commit()

    def record_failed(self, key: str, label: str, attempts: int,
                      error: str, elapsed: float) -> None:
        """Commit a point whose retry budget ran out."""
        self._conn.execute(
            "INSERT OR REPLACE INTO points "
            "(key, label, status, attempts, elapsed, result, error) "
            "VALUES (?, ?, 'failed', ?, ?, NULL, ?)",
            (key, label, attempts, elapsed, error))
        self._conn.commit()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
