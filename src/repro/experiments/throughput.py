"""Saturation-throughput measurement (the paper's throughput metric).

Section 4.1 defines throughput as "the injection rate at which average
network latency exceeds twice the latency at zero network load".  This
harness measures it directly: a bisection over injection rates, each probe
a short uniform-traffic simulation, with the zero-load reference taken
from the analytic model (validated against single-packet runs in the
tests).

Used for the Fig. 5(g) comparison claims ("the network with 5-10 Gb/s
links saturates at the same point as the non-power-aware network; with
3.3-10 Gb/s links throughput suffers; statically 3.3 Gb/s is far worse").
"""

from __future__ import annotations

from repro.config import PowerAwareConfig
from repro.experiments.configs import (
    ExperimentScale,
    uniform_saturation_packets,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import run_simulation
from repro.metrics.latency import find_throughput, zero_load_latency

#: Packet size used by the probes (the sweep's synthetic default).
PROBE_PACKET_SIZE = 5


def latency_probe(scale: ExperimentScale,
                  power: PowerAwareConfig | None,
                  seed: int = 1,
                  cycles: int | None = None):
    """A ``rate -> mean latency`` callable backed by short simulations."""
    budget = cycles if cycles is not None else max(6000,
                                                   scale.run_cycles // 4)

    def probe(rate: float) -> float:
        result = run_simulation(
            scale, power, uniform_factory(rate, PROBE_PACKET_SIZE),
            label=f"throughput-probe@{rate:.3f}", seed=seed, cycles=budget,
        )
        return result.mean_latency

    return probe


def measure_throughput(scale: ExperimentScale,
                       power: PowerAwareConfig | None,
                       *, seed: int = 1, cycles: int | None = None,
                       tolerance_fraction: float = 0.05,
                       max_iterations: int = 7) -> float:
    """Measured saturation throughput, packets/cycle.

    The "latency at zero network load" reference is configuration-
    specific: an idle power-aware network sits at its *minimum* bit rate
    (that is the whole point), so its zero-load latency uses the ladder
    bottom's service time; the non-power-aware baseline references the
    full rate.
    """
    if power is not None:
        service = scale.network.flit_service_time(power.min_bit_rate,
                                                  power.max_bit_rate)
    else:
        service = 1.0
    zero_load = zero_load_latency(scale.network, PROBE_PACKET_SIZE,
                                  service_time=service)
    ceiling = uniform_saturation_packets(scale.network, PROBE_PACKET_SIZE)
    return find_throughput(
        latency_probe(scale, power, seed=seed, cycles=cycles),
        zero_load=zero_load,
        low=0.05 * ceiling,
        high=1.1 * ceiling,
        tolerance=tolerance_fraction * ceiling,
        max_iterations=max_iterations,
    )
