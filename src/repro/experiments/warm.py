"""Warm-worker construction cache for sweep execution.

Building a simulator is the dominant fixed cost of a short sweep point:
geometry, routers, links, credit wiring, route tables and the power
manager's operating-point table are all constructed from scratch even
though consecutive points in a sweep almost always share them and only
vary seed, rates and policy scalars.

This module keeps a small per-process cache of fully built
:class:`~repro.network.simulator.Simulator` instances keyed by the
*structural* part of a sweep point — the :class:`~repro.config.NetworkConfig`
(a frozen dataclass, so the key is exact content equality, not identity).
Everything else a point varies is handled by
:meth:`~repro.network.simulator.Simulator.reset`, whose hard contract is
bit-identity with fresh construction (hypothesis-tested over all four
topologies, with and without faults): power policy scalars are swapped
into the reused power manager, a structurally different power config
rebuilds just the manager on the warm fabric, and fault configs rebuild
the reliability layer per run.

The cache composes with the deeper per-process memos — topology
instances (:mod:`repro.network.topologies`), per-router route tables
(``Router.build_route_table``'s copy-on-write cache) and
:class:`~repro.core.tables.OperatingPointTable` — so even a *cold*
simulator construction after the first reuses the expensive immutable
artifacts.

Fault tolerance: a worker respawned by the resilient executor simply
starts with a cold cache, and a point that raises mid-run evicts its
simulator (a half-run fabric is never reused).
"""

from __future__ import annotations

from repro.config import NetworkConfig, SimulationConfig
from repro.experiments import chaos
from repro.experiments.runner import SweepPoint, collect_result
from repro.metrics.summary import RunResult
from repro.network.simulator import Simulator
from repro.traffic.base import TrafficSource

#: Structural key -> warm simulator.  Insertion order doubles as LRU
#: order (hits re-insert); bounded because a worker interleaving many
#: distinct geometries gains little from reuse anyway.
_CACHE: dict[NetworkConfig, Simulator] = {}
_CACHE_MAX = 4

_HITS = 0
_MISSES = 0


def structural_key(point: SweepPoint) -> NetworkConfig:
    """The part of ``point`` that demands a fresh object graph.

    Only the network structure: seed, rates, cycles, drain, power policy
    scalars and fault configs are all absorbed by ``Simulator.reset``
    (a structurally different power config rebuilds just the manager on
    the warm fabric).
    """
    return point.scale.network


def cache_info() -> dict[str, int]:
    """Warm-cache counters (for benches and tests)."""
    return {"hits": _HITS, "misses": _MISSES, "size": len(_CACHE)}


def clear_cache() -> None:
    """Drop every cached simulator and zero the counters (tests)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def _acquire(config: SimulationConfig, traffic: TrafficSource) -> Simulator:
    """A simulator ready to run ``config``: warm-reset or freshly built."""
    global _HITS, _MISSES
    key = config.network
    sim = _CACHE.pop(key, None)
    if sim is not None:
        try:
            sim.reset(config, traffic)
            _HITS += 1
        except Exception:
            # Safe fallback: anything a reset cannot absorb (or a fabric
            # corrupted by a previous failure) falls back to cold
            # construction, which re-raises genuine config errors itself.
            sim = None
    if sim is None:
        _MISSES += 1
        sim = Simulator(config, traffic)
    _CACHE[key] = sim
    if len(_CACHE) > _CACHE_MAX:
        _CACHE.pop(next(iter(_CACHE)))
    return sim


def run_point_warm(point: SweepPoint, attempt: int = 1) -> RunResult:
    """Execute one sweep point on a warm (cached) simulator.

    Drop-in replacement for :func:`~repro.experiments.runner.run_point`
    with bit-identical results; module-level so process pools can map it.
    ``attempt`` is threaded in by the resilient executor for the chaos
    harness, exactly as in ``run_point``.
    """
    chaos.maybe_inject(point.label, attempt)
    scale = point.scale
    config = SimulationConfig(
        network=scale.network,
        power=point.power,
        seed=point.seed,
        warmup_cycles=scale.warmup_cycles,
        sample_interval=scale.sample_interval,
        faults=point.faults,
    )
    traffic = point.traffic_factory(scale.network.num_nodes, point.seed)
    sim = _acquire(config, traffic)
    budget = point.cycles if point.cycles is not None else scale.run_cycles
    try:
        if point.drain:
            sim.run_until_drained(budget)
        else:
            sim.run(budget)
        return collect_result(sim, point.label)
    except BaseException:
        # The simulator may be mid-run; never hand a dirty fabric to the
        # next point.  (Timeouts, chaos kills and genuine failures all
        # land here — the respawned or retrying worker rebuilds cold.)
        _CACHE.pop(config.network, None)
        raise
