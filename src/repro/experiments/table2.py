"""Table 2 harness: link component power budget and scaling trends.

Table 2 is analytic — it reports each component's power at the 10 Gb/s
maximum operating point and the trend its power follows as bit rate and
supply voltage scale.  The harness renders both the trend-model view
(:class:`~repro.photonics.power_model.LinkPowerModel`) and the calibrated
physics-equation view (:func:`~repro.photonics.power_model.physics_table2`),
plus the paper's worked example: a VCSEL link dropping from 290 mW at
10 Gb/s to ~60 mW at 5 Gb/s (~80% savings).
"""

from __future__ import annotations

from repro.photonics.constants import MAX_BIT_RATE
from repro.photonics.power_model import (
    LinkPowerModel,
    physics_table2,
)
from repro.units import to_mw

#: Paper Table 2, for direct comparison: component -> (mW, trend).
PAPER_TABLE2 = {
    "vcsel": (30.0, "Vdd"),
    "vcsel_driver": (10.0, "Vdd^2*BR"),
    "modulator_driver": (40.0, "BR"),
    "tia": (100.0, "Vdd*BR"),
    "cdr": (150.0, "Vdd^2*BR"),
}


def trend_model_rows() -> list[dict[str, str]]:
    """Table 2 rows from the trend-based link power models."""
    rows: dict[str, dict[str, str]] = {}
    for model in (LinkPowerModel.vcsel_link(), LinkPowerModel.modulator_link()):
        for row in model.table_rows():
            rows[row["component"]] = row
    order = ["vcsel", "vcsel_driver", "modulator_driver", "tia", "cdr"]
    return [rows[name] for name in order]


def physics_model_rows() -> dict[str, float]:
    """Per-component power (mW) from the calibrated physics equations."""
    return physics_table2()


def link_totals() -> dict[str, float]:
    """Per-technology link power at max rate and at 5 Gb/s, in mW."""
    vcsel = LinkPowerModel.vcsel_link()
    modulator = LinkPowerModel.modulator_link()
    return {
        "vcsel_at_10g_mw": to_mw(vcsel.power(MAX_BIT_RATE)),
        "vcsel_at_5g_mw": to_mw(vcsel.power(5e9)),
        "vcsel_savings_at_5g": vcsel.savings_fraction(5e9),
        "modulator_at_10g_mw": to_mw(modulator.power(MAX_BIT_RATE)),
        "modulator_at_5g_mw": to_mw(modulator.power(5e9)),
        "modulator_savings_at_5g": modulator.savings_fraction(5e9),
    }


def verify_against_paper() -> list[str]:
    """Cross-check our models against the paper's numbers.

    Returns a list of mismatch descriptions (empty = full agreement).
    """
    problems: list[str] = []
    physics = physics_model_rows()
    for name, (paper_mw, paper_trend) in PAPER_TABLE2.items():
        measured = physics.get(name)
        if measured is None:
            problems.append(f"{name}: missing from physics model")
            continue
        if abs(measured - paper_mw) > 0.01:
            problems.append(
                f"{name}: physics model gives {measured:.2f} mW, "
                f"paper says {paper_mw} mW"
            )
    for row in trend_model_rows():
        paper_mw, paper_trend = PAPER_TABLE2[row["component"]]
        if abs(float(row["power_mw"]) - paper_mw) > 0.01:
            problems.append(
                f"{row['component']}: trend model gives {row['power_mw']} mW, "
                f"paper says {paper_mw} mW"
            )
        if row["trend"] != paper_trend:
            problems.append(
                f"{row['component']}: trend {row['trend']!r} != "
                f"paper {paper_trend!r}"
            )
    totals = link_totals()
    if abs(totals["vcsel_at_10g_mw"] - 290.0) > 0.01:
        problems.append(
            f"VCSEL link total {totals['vcsel_at_10g_mw']:.2f} != 290 mW"
        )
    # Paper Section 4.1: 61.25 mW at 5 Gb/s including the ~1.25 mW
    # photodetector that Table 2 leaves out; our Table-2-only total is 60.
    if abs(totals["vcsel_at_5g_mw"] - 60.0) > 0.5:
        problems.append(
            f"VCSEL link at 5G {totals['vcsel_at_5g_mw']:.2f} mW not ~60 mW"
        )
    return problems
