"""Canonical experiment configurations and scaling presets.

The paper simulates a 512-node system for 10^6+ cycles per point.  A pure
Python simulator covers ~4k cycles/s at that size, so sweeps with dozens of
points use *scaled* presets: a smaller mesh and shorter runs, with the
slowest control time constants (the 100 us optical settle and 200 us laser
epoch) compressed by the same factor so every control loop still executes
many times per run.  The ``paper`` preset keeps everything at full scale
for users with hours of patience; EXPERIMENTS.md records which preset each
reported number used.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import (
    VCSEL,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    TransitionConfig,
)
from repro.errors import ConfigError
from repro.traffic.base import DEFAULT_PACKET_SIZE


@dataclass(frozen=True)
class ExperimentScale:
    """A coherent (network size, run length, time-constant) preset."""

    name: str
    network: NetworkConfig
    run_cycles: int
    #: Divides the optical settle / laser epoch time constants.
    slow_constant_divisor: int
    warmup_cycles: int
    sample_interval: int
    #: Default policy window at this scale.  Scaled presets compress run
    #: length by ~25-50x, so the window shrinks too — otherwise the policy
    #: would see tens of windows per workload phase at paper scale but only
    #: a couple at bench scale, changing its tracking ability qualitatively.
    policy_window_cycles: int = 1000

    def default_policy(self) -> PolicyConfig:
        return PolicyConfig(window_cycles=self.policy_window_cycles)

    def transitions(self) -> TransitionConfig:
        """Transition delays with the paper's *ratios* to the policy window.

        The paper's operating point is Tw=1000 with Tv=100 and Tbr=20 —
        transitions cost ~12% of a window.  Scaled presets shrink Tw, so the
        electrical delays shrink by the same factor; otherwise every scaled
        run would sit in the pathological Tw~Tv regime that the paper's own
        Fig. 5(a) shows to be bad.
        """
        base = TransitionConfig()
        ratio = self.policy_window_cycles / 1000.0  # repro: noqa[UN002] ratio to the paper's Tw=1000, not a unit conversion
        return replace(
            base,
            bit_rate_transition_cycles=max(
                0, round(base.bit_rate_transition_cycles * ratio)
            ),
            voltage_transition_cycles=max(
                0, round(base.voltage_transition_cycles * ratio)
            ),
            optical_transition_cycles=max(
                1, base.optical_transition_cycles // self.slow_constant_divisor
            ),
            laser_epoch_cycles=max(
                1, base.laser_epoch_cycles // self.slow_constant_divisor
            ),
            # The LINK_OFF wake penalty is a slow (laser re-bias class)
            # constant, compressed like the optical settle so scaled runs
            # still see wakes complete well within a run.
            link_off_wake_cycles=max(
                1, base.link_off_wake_cycles // self.slow_constant_divisor
            ),
        )


SCALES: dict[str, ExperimentScale] = {
    # Tiny: CI-grade smoke runs (seconds).  The mesh shrinks to 4x4 but the
    # 8-node racks stay: the paper's behaviour hinges on the ratio of
    # node-facing to mesh links (512/224 at paper scale, 128/48 here), and
    # thinner racks concentrate per-injection-link load far above anything
    # the paper's policy ever sees.
    "smoke": ExperimentScale(
        name="smoke",
        network=NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8),
        run_cycles=16_000,
        slow_constant_divisor=25,
        warmup_cycles=1_500,
        sample_interval=500,
        policy_window_cycles=200,
    ),
    # Default: the benchmark preset (tens of seconds per point).
    "bench": ExperimentScale(
        name="bench",
        network=NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8),
        run_cycles=48_000,
        slow_constant_divisor=10,
        warmup_cycles=4_000,
        sample_interval=1_000,
        policy_window_cycles=400,
    ),
    # Full paper configuration (minutes to hours per point).
    "paper": ExperimentScale(
        name="paper",
        network=NetworkConfig(),
        run_cycles=1_000_000,
        slow_constant_divisor=1,
        warmup_cycles=50_000,
        sample_interval=10_000,
    ),
}


def get_scale(name: str) -> ExperimentScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; known: {sorted(SCALES)}"
        ) from None


def scale_with_topology(scale: ExperimentScale,
                        topology: str) -> ExperimentScale:
    """A copy of ``scale`` whose network runs the named topology.

    Node count, run length and every time constant are unchanged — the
    topology axis varies only the substrate, so sweep comparisons across
    topologies are apples-to-apples.  Unknown names raise
    :class:`~repro.errors.ConfigError` (from the topology registry, which
    lists the known ones).
    """
    if topology == scale.network.topology:
        return scale
    return replace(scale, network=replace(scale.network, topology=topology))


def power_config(scale: ExperimentScale, *, technology: str = VCSEL,
                 min_bit_rate: float = 5e9, optical_levels: int = 1,
                 policy: PolicyConfig | None = None,
                 ideal_transitions: bool = False,
                 link_off: bool = False) -> PowerAwareConfig:
    """Build a :class:`PowerAwareConfig` for an experiment scale."""
    transitions = scale.transitions()
    if ideal_transitions:
        transitions = replace(
            transitions,
            bit_rate_transition_cycles=0,
            voltage_transition_cycles=0,
        )
    return PowerAwareConfig(
        technology=technology,
        min_bit_rate=min_bit_rate,
        num_levels=6,
        optical_levels=optical_levels,
        policy=policy or scale.default_policy(),
        transitions=transitions,
        link_off=link_off,
    )


def static_rate_config(scale: ExperimentScale, bit_rate: float,
                       technology: str = VCSEL) -> PowerAwareConfig:
    """A network whose links are *statically* pinned at one bit rate.

    Used by Fig. 5(g)'s "statically set at 3.3 Gb/s" comparison; the
    one-level ladder makes the policy a no-op.
    """
    return PowerAwareConfig(
        technology=technology,
        min_bit_rate=bit_rate,
        max_bit_rate=bit_rate,
        num_levels=1,
        optical_levels=1,
        policy=PolicyConfig(),
        transitions=scale.transitions(),
    )


def baseline_link_power(scale: ExperimentScale,
                        power: PowerAwareConfig) -> float:
    """Non-power-aware total link power for a scale's topology, watts.

    The normalisation denominator for power-over-time series: the number
    of fibers in the topology times the configured technology's
    maximum-rate link power.
    """
    from repro.core.manager import power_model_from_config
    from repro.network.stats import StatsCollector
    from repro.network.topology import ClusteredMesh

    topology = ClusteredMesh(scale.network, StatsCollector())
    return len(topology.links) * power_model_from_config(power).max_power


# -- workload reference rates -------------------------------------------------

def uniform_saturation_packets(network: NetworkConfig,
                               packet_size: int = DEFAULT_PACKET_SIZE) -> float:
    """Theoretical uniform-traffic saturation rate, packets/cycle.

    Bisection-bound estimate: a vertical cut of a ``w x h`` mesh is crossed
    by ``2h`` unidirectional links each carrying one flit/cycle at the
    maximum bit rate, and uniform traffic sends half of all flits across
    the cut, giving ``4 * h`` flits/cycle network-wide (matching the
    paper's ~6.4 packets/cycle ceiling for 5-flit packets on 8x8).
    """
    cut_links = 2 * min(network.mesh_width, network.mesh_height)
    max_flits_per_cycle = 2.0 * cut_links
    return max_flits_per_cycle / packet_size


def reference_rates(network: NetworkConfig,
                    packet_size: int = DEFAULT_PACKET_SIZE
                    ) -> dict[str, float]:
    """Light/medium/heavy injection rates scaled to the network size.

    At paper scale these land on the paper's 1.25 / 3.3 / 5 packets-per-
    cycle operating points.
    """
    saturation = uniform_saturation_packets(network, packet_size)
    return {
        "light": 0.195 * saturation,
        "medium": 0.45 * saturation,
        "heavy": 0.65 * saturation,
    }
