"""Ablation harness for the policy stabilisers (DESIGN.md Section 7).

The reproduction adds four documented, switchable mechanisms on top of the
paper's literal Table 1 policy: the congestion down-scale guard, the
congestion rescue, the down-step headroom check, and pressure-aware
utilisation.  This harness runs the same workload with each mechanism
removed in turn (and with all removed = the literal paper policy), so the
contribution of every design choice is measurable.

Used by ``benchmarks/bench_policy_ablation.py`` and runnable standalone::

    python -m repro.experiments.ablation --scale smoke
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.config import PolicyConfig
from repro.experiments.configs import (
    ExperimentScale,
    get_scale,
    power_config,
    reference_rates,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import run_simulation
from repro.metrics.ascii import format_table
from repro.metrics.summary import RunResult

#: Ablation variants: name -> PolicyConfig-overrides relative to default.
VARIANTS: dict[str, dict] = {
    "full": {},
    "no_guard": {"congestion_inhibits_downscale": False},
    "no_rescue": {"rescue_threshold": 1.0},
    "no_headroom": {"downscale_headroom_check": False},
    "no_pressure": {"pressure_aware_utilisation": False},
    "paper_literal": {
        "congestion_inhibits_downscale": False,
        "rescue_threshold": 1.0,
        "downscale_headroom_check": False,
        "pressure_aware_utilisation": False,
    },
}


def variant_policy(name: str, window_cycles: int) -> PolicyConfig:
    """The policy configuration for one ablation variant."""
    if name not in VARIANTS:
        raise KeyError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}")
    return replace(PolicyConfig(window_cycles=window_cycles),
                   **VARIANTS[name])


def run_ablation(scale: ExperimentScale, load: str = "medium",
                 seed: int = 1,
                 variants: tuple[str, ...] | None = None
                 ) -> dict[str, RunResult]:
    """Run every variant on the same uniform workload."""
    rate = reference_rates(scale.network)[load]
    factory = uniform_factory(rate)
    names = variants or tuple(VARIANTS)
    results = {}
    for name in names:
        policy = variant_policy(name, scale.policy_window_cycles)
        power = power_config(scale, policy=policy)
        results[name] = run_simulation(
            scale, power, factory, label=f"ablation/{name}", seed=seed,
        )
    return results


def ablation_table(results: dict[str, RunResult]) -> str:
    """Render the ablation comparison as an aligned text table."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            f"{result.mean_latency:.1f}",
            f"{result.relative_power:.3f}",
            f"{result.delivery_fraction:.3f}",
            result.transitions_up + result.transitions_down,
        ])
    return format_table(
        ["variant", "latency (cyc)", "rel power", "delivered", "transitions"],
        rows,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--load", default="medium",
                        choices=["light", "medium", "heavy"])
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    results = run_ablation(get_scale(args.scale), args.load, args.seed)
    print(ablation_table(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
