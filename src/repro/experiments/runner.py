"""Experiment runner: build, run and summarise simulations.

Every figure/table harness funnels through :func:`run_simulation` (one
configured run -> :class:`~repro.metrics.summary.RunResult`) and
:func:`run_pair` (power-aware + matched non-power-aware baseline ->
:class:`~repro.metrics.summary.NormalisedResult`), so normalisation is
applied uniformly and deterministically (same traffic seed on both sides).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import (
    NetworkConfig,
    PowerAwareConfig,
    SimulationConfig,
)
from repro.experiments.configs import ExperimentScale
from repro.metrics.summary import NormalisedResult, RunResult, normalise
from repro.network.simulator import Simulator
from repro.traffic.base import TrafficSource

#: Builds a fresh traffic source: (num_nodes, seed) -> source.  Sources are
#: stateful, so every run needs its own instance.
TrafficFactory = Callable[[int, int], TrafficSource]


def build_simulator(network: NetworkConfig,
                    power: PowerAwareConfig | None,
                    traffic_factory: TrafficFactory,
                    *, seed: int, warmup_cycles: int,
                    sample_interval: int) -> Simulator:
    """Construct a ready-to-run simulator."""
    config = SimulationConfig(
        network=network,
        power=power,
        seed=seed,
        warmup_cycles=warmup_cycles,
        sample_interval=sample_interval,
    )
    traffic = traffic_factory(network.num_nodes, seed)
    return Simulator(config, traffic)


def collect_result(sim: Simulator, label: str) -> RunResult:
    """Freeze a finished simulator's metrics into a :class:`RunResult`."""
    sim.finalize()
    cycles = max(1, sim.cycle)
    stats = sim.stats
    power = sim.power
    return RunResult(
        label=label,
        cycles=cycles,
        packets_created=stats.packets_created,
        packets_delivered=stats.packets_delivered,
        mean_latency=stats.mean_latency,
        p95_latency=stats.latency_percentile(0.95),
        max_latency=stats.latency_max,
        relative_power=sim.relative_power(),
        accepted_rate=stats.accepted_rate(cycles),
        transitions_up=(power.transition_totals()["up"] if power else 0),
        transitions_down=(power.transition_totals()["down"] if power else 0),
        power_series=tuple(power.power_series) if power else (),
        injection_series=tuple(stats.injection_series()),
        level_histogram=tuple(power.level_histogram()) if power else (),
    )


def run_simulation(scale: ExperimentScale,
                   power: PowerAwareConfig | None,
                   traffic_factory: TrafficFactory,
                   *, label: str, seed: int = 1,
                   cycles: int | None = None,
                   drain: bool = False) -> RunResult:
    """One configured run at an experiment scale."""
    sim = build_simulator(
        scale.network, power, traffic_factory,
        seed=seed, warmup_cycles=scale.warmup_cycles,
        sample_interval=scale.sample_interval,
    )
    budget = cycles if cycles is not None else scale.run_cycles
    if drain:
        sim.run_until_drained(budget)
    else:
        sim.run(budget)
    return collect_result(sim, label)


def run_pair(scale: ExperimentScale, power: PowerAwareConfig,
             traffic_factory: TrafficFactory, *, label: str, seed: int = 1,
             cycles: int | None = None, drain: bool = False
             ) -> tuple[RunResult, RunResult, NormalisedResult]:
    """A power-aware run plus its matched non-power-aware baseline.

    Both runs use the same traffic seed, so they see the identical packet
    stream; the normalised result is therefore a pure policy effect.
    """
    aware = run_simulation(
        scale, power, traffic_factory,
        label=label, seed=seed, cycles=cycles, drain=drain,
    )
    baseline = run_simulation(
        scale, None, traffic_factory,
        label=f"{label}/baseline", seed=seed, cycles=cycles, drain=drain,
    )
    return aware, baseline, normalise(aware, baseline)
