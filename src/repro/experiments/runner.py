"""Experiment runner: build, run and summarise simulations.

Every figure/table harness funnels through :func:`run_simulation` (one
configured run -> :class:`~repro.metrics.summary.RunResult`) and
:func:`run_pair` (power-aware + matched non-power-aware baseline ->
:class:`~repro.metrics.summary.NormalisedResult`), so normalisation is
applied uniformly and deterministically (same traffic seed on both sides).

Sweeps go through :class:`SweepPoint` + :func:`run_sweep`: each point is a
frozen, picklable description of one run carrying its own explicit seed,
so a sweep executed across a process pool is bit-identical, point for
point, to the same sweep executed serially — parallelism only reorders
wall-clock, never results.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import (
    NetworkConfig,
    PowerAwareConfig,
    SimulationConfig,
)
from repro.errors import ConfigError
from repro.experiments import chaos
from repro.experiments.configs import ExperimentScale
from repro.metrics.summary import NormalisedResult, RunResult, normalise
from repro.network.simulator import Simulator
from repro.reliability.config import FaultConfig
from repro.telemetry.config import TelemetryConfig
from repro.traffic.base import TrafficSource

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.experiments.executor import ExecutionPlan

#: Builds a fresh traffic source: (num_nodes, seed) -> source.  Sources are
#: stateful, so every run needs its own instance.  Factories handed to
#: :func:`run_sweep` must be picklable (the figure harnesses use frozen
#: dataclass callables, not closures).
TrafficFactory = Callable[[int, int], TrafficSource]


def build_simulator(network: NetworkConfig,
                    power: PowerAwareConfig | None,
                    traffic_factory: TrafficFactory,
                    *, seed: int, warmup_cycles: int,
                    sample_interval: int,
                    faults: FaultConfig | None = None,
                    validate: bool = False,
                    telemetry: TelemetryConfig | None = None,
                    backend: str = "python") -> Simulator:
    """Construct a ready-to-run simulator."""
    config = SimulationConfig(
        network=network,
        power=power,
        seed=seed,
        warmup_cycles=warmup_cycles,
        sample_interval=sample_interval,
        faults=faults,
        validate_topology=validate,
        telemetry=telemetry,
        backend=backend,
    )
    traffic = traffic_factory(network.num_nodes, seed)
    return Simulator(config, traffic)


def collect_result(sim: Simulator, label: str) -> RunResult:
    """Freeze a finished simulator's metrics into a :class:`RunResult`."""
    sim.finalize()
    cycles = max(1, sim.cycle)
    stats = sim.stats
    power = sim.power
    return RunResult(
        label=label,
        cycles=cycles,
        packets_created=stats.packets_created,
        packets_delivered=stats.packets_delivered,
        mean_latency=stats.mean_latency,
        p95_latency=stats.latency_percentile(0.95),
        max_latency=stats.latency_max,
        relative_power=sim.relative_power(),
        accepted_rate=stats.accepted_rate(cycles),
        transitions_up=(power.transition_totals()["up"] if power else 0),
        transitions_down=(power.transition_totals()["down"] if power else 0),
        power_series=tuple(power.power_series) if power else (),
        injection_series=tuple(stats.injection_series()),
        level_histogram=tuple(power.level_histogram()) if power else (),
        reliability=(sim.reliability.report()
                     if sim.reliability is not None else None),
    )


def run_simulation(scale: ExperimentScale,
                   power: PowerAwareConfig | None,
                   traffic_factory: TrafficFactory,
                   *, label: str, seed: int = 1,
                   cycles: int | None = None,
                   drain: bool = False,
                   faults: FaultConfig | None = None,
                   validate: bool = False,
                   telemetry: TelemetryConfig | None = None,
                   backend: str = "python") -> RunResult:
    """One configured run at an experiment scale."""
    sim = build_simulator(
        scale.network, power, traffic_factory,
        seed=seed, warmup_cycles=scale.warmup_cycles,
        sample_interval=scale.sample_interval,
        faults=faults, validate=validate, telemetry=telemetry,
        backend=backend,
    )
    budget = cycles if cycles is not None else scale.run_cycles
    try:
        if drain:
            sim.run_until_drained(budget)
        else:
            sim.run(budget)
        return collect_result(sim, label)
    finally:
        # Telemetry sinks buffer; close them even when the run (or result
        # collection) raises, or a failing sweep point leaks file handles
        # and truncates the trace that would explain the failure.
        if sim.telemetry is not None:
            sim.telemetry.close()


def run_pair(scale: ExperimentScale, power: PowerAwareConfig,
             traffic_factory: TrafficFactory, *, label: str, seed: int = 1,
             cycles: int | None = None, drain: bool = False,
             faults: FaultConfig | None = None
             ) -> tuple[RunResult, RunResult, NormalisedResult]:
    """A power-aware run plus its matched non-power-aware baseline.

    Both runs use the same traffic seed, so they see the identical packet
    stream; the normalised result is therefore a pure policy effect.  A
    fault config applies to *both* sides, so the comparison stays a policy
    effect under the same fault environment.

    The two sides also share the per-process immutable construction
    artifacts (topology instance, pristine route tables, operating-point
    table) through the memos :mod:`repro.experiments.warm` relies on —
    results are bit-identical to fully cold construction, regression-
    tested against a pristine subprocess in
    ``tests/unit/experiments/test_warm.py``.
    """
    aware = run_simulation(
        scale, power, traffic_factory,
        label=label, seed=seed, cycles=cycles, drain=drain, faults=faults,
    )
    baseline = run_simulation(
        scale, None, traffic_factory,
        label=f"{label}/baseline", seed=seed, cycles=cycles, drain=drain,
        faults=faults,
    )
    return aware, baseline, normalise(aware, baseline)


# -- sweeps ------------------------------------------------------------------


def derive_seed(base: int, *components: object) -> int:
    """A stable per-point seed from a base seed and identifying components.

    Hash-based (sha256), so the seed of one sweep point depends only on
    its own identity — never on how many other points the sweep has or in
    what order they run.  Use for new sweeps whose points need distinct
    streams; the figure harnesses keep their historical seed-sharing so
    published outputs are unchanged.
    """
    if base < 0:
        raise ConfigError(f"base seed must be >= 0, got {base!r}")
    payload = ":".join([str(base), *(str(c) for c in components)])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**32)


@dataclass(frozen=True)
class SweepPoint:
    """One run of a sweep: a self-contained, picklable work item.

    The explicit per-point ``seed`` is what makes parallel execution
    trivially deterministic — no RNG state is shared between points.
    """

    label: str
    scale: ExperimentScale
    power: PowerAwareConfig | None
    traffic_factory: TrafficFactory
    seed: int
    cycles: int | None = None
    drain: bool = False
    faults: FaultConfig | None = None


def run_point(point: SweepPoint, attempt: int = 1) -> RunResult:
    """Execute one sweep point (module-level, so process pools can map it).

    ``attempt`` is threaded in by the resilient executor so the chaos
    harness can sabotage specific attempts; direct callers can ignore it.
    """
    chaos.maybe_inject(point.label, attempt)
    return run_simulation(
        point.scale, point.power, point.traffic_factory,
        label=point.label, seed=point.seed,
        cycles=point.cycles, drain=point.drain, faults=point.faults,
    )


def run_sweep(points: Iterable[SweepPoint], *,
              max_workers: int | None = 1,
              execution: "ExecutionPlan | None" = None
              ) -> list[RunResult | None]:
    """Run every point, returning results in point order.

    ``max_workers=1`` (the default) runs in-process; ``None`` uses one
    worker per CPU; any other value caps the pool size.  Because every
    point carries its own seed and runs in a fresh simulator, the results
    are bit-identical whatever ``max_workers`` is — parallelism is purely
    a wall-clock optimisation.

    All execution goes through :mod:`repro.experiments.executor` futures,
    so one worker's crash or exception never discards sibling results.
    Without an ``execution`` plan, behaviour is the historical fail-fast:
    no journal, no retries, and the first failing point's exception is
    re-raised (a :class:`~repro.errors.ConfigError` is re-raised with the
    offending point's label prepended).  Pass an
    :class:`~repro.experiments.executor.ExecutionPlan` for journaling,
    timeouts, retries, or degraded completion — under a degraded
    (non-strict) plan, failed points come back as ``None`` entries.
    """
    from repro.experiments.executor import ExecutionPlan, execute_sweep

    if max_workers is not None and max_workers < 1:
        raise ConfigError(
            f"max_workers must be >= 1 or None, got {max_workers!r}"
        )
    plan = execution if execution is not None else ExecutionPlan(strict=True)
    outcome = execute_sweep(points, max_workers=max_workers, plan=plan)
    return outcome.results


def run_pairs(points: Sequence[SweepPoint], *, max_workers: int | None = 1,
              execution: "ExecutionPlan | None" = None
              ) -> list[tuple[RunResult, RunResult, NormalisedResult] | None]:
    """Run (power-aware, baseline) pairs built with :func:`pair_points`.

    ``points`` must alternate aware/baseline, as :func:`pair_points`
    produces; the whole flat list is dispatched through :func:`run_sweep`
    so pairs from different pairs interleave across workers.  Under a
    degraded execution plan a pair with either side missing becomes a
    ``None`` entry (a normalised ratio against a failed run would be
    meaningless).
    """
    if len(points) % 2:
        raise ConfigError("run_pairs needs an even number of points")
    results = run_sweep(points, max_workers=max_workers,
                        execution=execution)
    pairs: list[tuple[RunResult, RunResult, NormalisedResult] | None] = []
    for aware, baseline in zip(results[::2], results[1::2]):
        if aware is None or baseline is None:
            pairs.append(None)
        else:
            pairs.append((aware, baseline, normalise(aware, baseline)))
    return pairs


def pair_points(scale: ExperimentScale, power: PowerAwareConfig,
                traffic_factory: TrafficFactory, *, label: str,
                seed: int = 1, cycles: int | None = None,
                drain: bool = False) -> tuple[SweepPoint, SweepPoint]:
    """The (power-aware, baseline) point pair matching :func:`run_pair`."""
    aware = SweepPoint(label=label, scale=scale, power=power,
                       traffic_factory=traffic_factory, seed=seed,
                       cycles=cycles, drain=drain)
    baseline = SweepPoint(label=f"{label}/baseline", scale=scale, power=None,
                          traffic_factory=traffic_factory, seed=seed,
                          cycles=cycles, drain=drain)
    return aware, baseline
