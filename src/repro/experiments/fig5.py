"""Figure 5 harnesses: uniform random traffic sweeps.

* (a)(b)(c) — latency / power / power-latency product versus the policy's
  sampling window size ``Tw`` at light, medium and heavy load;
* (d)(e)(f) — the same metrics versus the average link-utilisation
  threshold with TH - TL fixed at 0.1;
* (g) — latency versus injection rate for the non-power-aware network, the
  5-10 Gb/s and 3.3-10 Gb/s power-aware networks, and a static 3.3 Gb/s
  network;
* (h) — relative power versus injection rate for VCSEL and modulator
  systems on both ladders.

Each public function returns plain data structures (series of
(x, metric) points) so benchmarks and the report generator can render them
without re-running simulations.
"""

from __future__ import annotations

from repro.config import MODULATOR, PolicyConfig, VCSEL
from repro.experiments.configs import (
    ExperimentScale,
    power_config,
    reference_rates,
    static_rate_config,
    uniform_saturation_packets,
)
from repro.experiments.runner import run_pair, run_simulation
from repro.metrics.summary import RunResult, SweepSeries, normalise
from repro.traffic.uniform import UniformRandomTraffic

#: Tw values of the paper's sweep (100 .. 10000 cycles at paper scale);
#: scaled presets sweep the same 0.1x .. 10x multiples of their own
#: default window so every point still sees many windows per run.
PAPER_WINDOWS = (100, 300, 1000, 3000, 10_000)
WINDOW_MULTIPLES = (0.1, 0.3, 1.0, 3.0, 10.0)


def windows_for_scale(scale: ExperimentScale) -> tuple[int, ...]:
    """The Tw sweep values appropriate to an experiment scale."""
    return tuple(
        max(10, round(multiple * scale.policy_window_cycles))
        for multiple in WINDOW_MULTIPLES
    )

#: Average-threshold values of the Fig. 5(d-f) sweep.
DEFAULT_THRESHOLDS = (0.45, 0.50, 0.55, 0.60, 0.65)


def uniform_factory(rate: float, packet_size: int = 5):
    """A :data:`~repro.experiments.runner.TrafficFactory` for uniform load."""

    def factory(num_nodes: int, seed: int) -> UniformRandomTraffic:
        return UniformRandomTraffic(num_nodes, rate, packet_size, seed)

    return factory


def _baseline_per_load(scale: ExperimentScale, loads: dict[str, float],
                       seed: int) -> dict[str, RunResult]:
    """One non-power-aware run per load (shared across sweep points)."""
    return {
        name: run_simulation(
            scale, None, uniform_factory(rate),
            label=f"baseline/{name}", seed=seed,
        )
        for name, rate in loads.items()
    }


def window_size_sweep(scale: ExperimentScale,
                      windows: tuple[int, ...] | None = None,
                      technology: str = MODULATOR,
                      seed: int = 1) -> dict[str, SweepSeries]:
    """Fig. 5(a)(b)(c): sweep the sampling window Tw at three loads.

    The paper runs this on the modulator-based network and notes identical
    trends for VCSELs.
    """
    windows = windows or windows_for_scale(scale)
    loads = reference_rates(scale.network)
    baselines = _baseline_per_load(scale, loads, seed)
    sweeps: dict[str, SweepSeries] = {}
    for load_name, rate in loads.items():
        series = SweepSeries(name=load_name, x_label="window_cycles")
        for window in windows:
            policy = PolicyConfig(window_cycles=window)
            power = power_config(scale, technology=technology, policy=policy)
            aware = run_simulation(
                scale, power, uniform_factory(rate),
                label=f"Tw={window}/{load_name}", seed=seed,
            )
            series.append(window, normalise(aware, baselines[load_name]))
        sweeps[load_name] = series
    return sweeps


def threshold_sweep(scale: ExperimentScale,
                    averages: tuple[float, ...] = DEFAULT_THRESHOLDS,
                    technology: str = MODULATOR,
                    seed: int = 1) -> dict[str, SweepSeries]:
    """Fig. 5(d)(e)(f): sweep the average link-utilisation threshold.

    TH - TL stays fixed at 0.1 ("simulations show better
    power-performance"); the congested thresholds shift with the average.
    """
    loads = reference_rates(scale.network)
    baselines = _baseline_per_load(scale, loads, seed)
    sweeps: dict[str, SweepSeries] = {}
    for load_name, rate in loads.items():
        series = SweepSeries(name=load_name, x_label="average_threshold")
        for average in averages:
            policy = PolicyConfig().with_average_threshold(average)
            power = power_config(scale, technology=technology, policy=policy)
            aware = run_simulation(
                scale, power, uniform_factory(rate),
                label=f"T={average}/{load_name}", seed=seed,
            )
            series.append(average, normalise(aware, baselines[load_name]))
        sweeps[load_name] = series
    return sweeps


def ladder_configurations(scale: ExperimentScale) -> dict[str, object]:
    """The network variants compared in Fig. 5(g)(h).

    Returns a name -> PowerAwareConfig-or-None mapping; ``None`` is the
    non-power-aware network.
    """
    return {
        "baseline": None,
        "vcsel_5_10": power_config(scale, technology=VCSEL, min_bit_rate=5e9),
        "vcsel_3.3_10": power_config(scale, technology=VCSEL,
                                     min_bit_rate=3.3e9),
        "modulator_5_10": power_config(scale, technology=MODULATOR,
                                       min_bit_rate=5e9),
        "modulator_3.3_10": power_config(scale, technology=MODULATOR,
                                         min_bit_rate=3.3e9),
        "static_3.3": static_rate_config(scale, 3.3e9),
    }


def injection_rate_fractions() -> tuple[float, ...]:
    """Saturation fractions swept in Fig. 5(g)(h)."""
    return (0.15, 0.30, 0.45, 0.60, 0.70, 0.78, 0.88)


def injection_sweep(scale: ExperimentScale,
                    configurations: dict[str, object] | None = None,
                    fractions: tuple[float, ...] | None = None,
                    seed: int = 1) -> dict[str, list[tuple[float, RunResult]]]:
    """Fig. 5(g)(h): sweep injection rate for every network variant.

    Returns, per variant, a list of (injection rate, RunResult); latency
    curves feed (g) and relative-power curves feed (h).
    """
    configurations = configurations or ladder_configurations(scale)
    fractions = fractions or injection_rate_fractions()
    saturation = uniform_saturation_packets(scale.network)
    curves: dict[str, list[tuple[float, RunResult]]] = {}
    for name, power in configurations.items():
        points = []
        for fraction in fractions:
            rate = fraction * saturation
            result = run_simulation(
                scale, power, uniform_factory(rate),
                label=f"{name}@{fraction:.2f}", seed=seed,
            )
            points.append((rate, result))
        curves[name] = points
    return curves


def throughput_of_curve(points: list[tuple[float, RunResult]],
                        zero_load_latency: float) -> float:
    """Saturation throughput per the paper's 2x-zero-load criterion.

    Works on an already-computed injection sweep: returns the highest
    swept rate whose latency stays below twice the zero-load latency
    (0.0 if even the lightest point exceeds it).
    """
    threshold = 2.0 * zero_load_latency
    best = 0.0
    for rate, result in points:
        latency = result.mean_latency
        if latency == latency and latency <= threshold:
            best = max(best, rate)
    return best
