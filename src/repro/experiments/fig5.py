"""Figure 5 harnesses: uniform random traffic sweeps.

* (a)(b)(c) — latency / power / power-latency product versus the policy's
  sampling window size ``Tw`` at light, medium and heavy load;
* (d)(e)(f) — the same metrics versus the average link-utilisation
  threshold with TH - TL fixed at 0.1;
* (g) — latency versus injection rate for the non-power-aware network, the
  5-10 Gb/s and 3.3-10 Gb/s power-aware networks, and a static 3.3 Gb/s
  network;
* (h) — relative power versus injection rate for VCSEL and modulator
  systems on both ladders.

Each public function returns plain data structures (series of
(x, metric) points) so benchmarks and the report generator can render them
without re-running simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import MODULATOR, PolicyConfig, VCSEL
from repro.experiments.configs import (
    ExperimentScale,
    power_config,
    reference_rates,
    static_rate_config,
    uniform_saturation_packets,
)
from repro.experiments.runner import SweepPoint, run_sweep
from repro.metrics.summary import RunResult, SweepSeries, normalise
from repro.traffic.uniform import UniformRandomTraffic

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.experiments.executor import ExecutionPlan

#: Tw values of the paper's sweep (100 .. 10000 cycles at paper scale);
#: scaled presets sweep the same 0.1x .. 10x multiples of their own
#: default window so every point still sees many windows per run.
PAPER_WINDOWS = (100, 300, 1000, 3000, 10_000)
WINDOW_MULTIPLES = (0.1, 0.3, 1.0, 3.0, 10.0)


def windows_for_scale(scale: ExperimentScale) -> tuple[int, ...]:
    """The Tw sweep values appropriate to an experiment scale."""
    return tuple(
        max(10, round(multiple * scale.policy_window_cycles))
        for multiple in WINDOW_MULTIPLES
    )

#: Average-threshold values of the Fig. 5(d-f) sweep.
DEFAULT_THRESHOLDS = (0.45, 0.50, 0.55, 0.60, 0.65)


@dataclass(frozen=True)
class UniformFactory:
    """A picklable :data:`~repro.experiments.runner.TrafficFactory` for
    uniform random load (a dataclass callable, not a closure, so sweep
    points carrying it can cross process boundaries)."""

    rate: float
    packet_size: int = 5

    def __call__(self, num_nodes: int, seed: int) -> UniformRandomTraffic:
        return UniformRandomTraffic(num_nodes, self.rate,
                                    self.packet_size, seed)


def uniform_factory(rate: float, packet_size: int = 5) -> UniformFactory:
    """A :data:`~repro.experiments.runner.TrafficFactory` for uniform load."""
    return UniformFactory(rate, packet_size)


def _baseline_points(scale: ExperimentScale, loads: dict[str, float],
                     seed: int) -> list[SweepPoint]:
    """One non-power-aware point per load (shared across sweep points)."""
    return [
        SweepPoint(label=f"baseline/{name}", scale=scale, power=None,
                   traffic_factory=uniform_factory(rate), seed=seed)
        for name, rate in loads.items()
    ]


def _policy_sweep(scale: ExperimentScale, loads: dict[str, float],
                  x_label: str, x_values, make_label, make_policy,
                  technology: str, seed: int,
                  max_workers: int | None,
                  execution: "ExecutionPlan | None" = None
                  ) -> dict[str, SweepSeries]:
    """Shared machinery of the Tw and threshold sweeps.

    Builds every (load, x) point plus the per-load baselines, dispatches
    them through :func:`~repro.experiments.runner.run_sweep` (serial or
    process-parallel — bit-identical either way) and folds the results
    into per-load :class:`~repro.metrics.summary.SweepSeries`.

    Under a degraded (non-strict) execution plan a failed point — or a
    failed per-load baseline, which anchors a whole series — leaves a gap
    in the returned series instead of aborting the sweep.
    """
    points = _baseline_points(scale, loads, seed)
    for load_name, rate in loads.items():
        for x in x_values:
            power = power_config(scale, technology=technology,
                                 policy=make_policy(x))
            points.append(SweepPoint(
                label=make_label(x, load_name), scale=scale, power=power,
                traffic_factory=uniform_factory(rate), seed=seed,
            ))
    results = run_sweep(points, max_workers=max_workers,
                        execution=execution)
    baselines = dict(zip(loads, results[:len(loads)]))
    aware_iter = iter(results[len(loads):])
    sweeps: dict[str, SweepSeries] = {}
    for load_name in loads:
        series = SweepSeries(name=load_name, x_label=x_label)
        for x in x_values:
            aware = next(aware_iter)
            baseline = baselines[load_name]
            if aware is None or baseline is None:
                continue
            series.append(x, normalise(aware, baseline))
        sweeps[load_name] = series
    return sweeps


def window_size_sweep(scale: ExperimentScale,
                      windows: tuple[int, ...] | None = None,
                      technology: str = MODULATOR,
                      seed: int = 1, *,
                      max_workers: int | None = 1,
                      execution: "ExecutionPlan | None" = None
                      ) -> dict[str, SweepSeries]:
    """Fig. 5(a)(b)(c): sweep the sampling window Tw at three loads.

    The paper runs this on the modulator-based network and notes identical
    trends for VCSELs.
    """
    windows = windows or windows_for_scale(scale)
    return _policy_sweep(
        scale, reference_rates(scale.network),
        "window_cycles", windows,
        lambda window, load: f"Tw={window}/{load}",
        lambda window: PolicyConfig(window_cycles=window),
        technology, seed, max_workers, execution,
    )


def threshold_sweep(scale: ExperimentScale,
                    averages: tuple[float, ...] = DEFAULT_THRESHOLDS,
                    technology: str = MODULATOR,
                    seed: int = 1, *,
                    max_workers: int | None = 1,
                    execution: "ExecutionPlan | None" = None
                    ) -> dict[str, SweepSeries]:
    """Fig. 5(d)(e)(f): sweep the average link-utilisation threshold.

    TH - TL stays fixed at 0.1 ("simulations show better
    power-performance"); the congested thresholds shift with the average.
    """
    return _policy_sweep(
        scale, reference_rates(scale.network),
        "average_threshold", averages,
        lambda average, load: f"T={average}/{load}",
        lambda average: PolicyConfig().with_average_threshold(average),
        technology, seed, max_workers, execution,
    )


def ladder_configurations(scale: ExperimentScale) -> dict[str, object]:
    """The network variants compared in Fig. 5(g)(h).

    Returns a name -> PowerAwareConfig-or-None mapping; ``None`` is the
    non-power-aware network.
    """
    return {
        "baseline": None,
        "vcsel_5_10": power_config(scale, technology=VCSEL, min_bit_rate=5e9),
        "vcsel_3.3_10": power_config(scale, technology=VCSEL,
                                     min_bit_rate=3.3e9),
        "modulator_5_10": power_config(scale, technology=MODULATOR,
                                       min_bit_rate=5e9),
        "modulator_3.3_10": power_config(scale, technology=MODULATOR,
                                         min_bit_rate=3.3e9),
        "static_3.3": static_rate_config(scale, 3.3e9),
    }


def injection_rate_fractions() -> tuple[float, ...]:
    """Saturation fractions swept in Fig. 5(g)(h)."""
    return (0.15, 0.30, 0.45, 0.60, 0.70, 0.78, 0.88)


def injection_sweep(scale: ExperimentScale,
                    configurations: dict[str, object] | None = None,
                    fractions: tuple[float, ...] | None = None,
                    seed: int = 1, *, max_workers: int | None = 1,
                    execution: "ExecutionPlan | None" = None
                    ) -> dict[str, list[tuple[float, RunResult]]]:
    """Fig. 5(g)(h): sweep injection rate for every network variant.

    Returns, per variant, a list of (injection rate, RunResult); latency
    curves feed (g) and relative-power curves feed (h).  Under a degraded
    execution plan, failed points are dropped from their variant's curve.
    """
    configurations = configurations or ladder_configurations(scale)
    fractions = fractions or injection_rate_fractions()
    saturation = uniform_saturation_packets(scale.network)
    rates = [fraction * saturation for fraction in fractions]
    points = [
        SweepPoint(label=f"{name}@{fraction:.2f}", scale=scale, power=power,
                   traffic_factory=uniform_factory(rate), seed=seed)
        for name, power in configurations.items()
        for fraction, rate in zip(fractions, rates)
    ]
    results = iter(run_sweep(points, max_workers=max_workers,
                             execution=execution))
    curves: dict[str, list[tuple[float, RunResult]]] = {}
    for name in configurations:
        curve = []
        for rate in rates:
            result = next(results)
            if result is not None:
                curve.append((rate, result))
        curves[name] = curve
    return curves


def throughput_of_curve(points: list[tuple[float, RunResult]],
                        zero_load_latency: float) -> float:
    """Saturation throughput per the paper's 2x-zero-load criterion.

    Works on an already-computed injection sweep: returns the highest
    swept rate whose latency stays below twice the zero-load latency
    (0.0 if even the lightest point exceeds it).
    """
    threshold = 2.0 * zero_load_latency
    best = 0.0
    for rate, result in points:
        latency = result.mean_latency
        if latency == latency and latency <= threshold:
            best = max(best, rate)
    return best
