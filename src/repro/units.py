"""Unit helpers used throughout the package.

The photonics models of the paper mix electrical units (volts, amps, watts),
optical units (dBm, dB insertion loss) and data-rate units (Gb/s).  Keeping
the conversions in one small module avoids scattered magic constants.

Internal convention
-------------------
* power: **watts** (helpers provided for mW and dBm),
* current: amps, voltage: volts, capacitance: farads,
* bit rate: **bits per second** (helpers for Gb/s),
* time: seconds at the physics layer, **router cycles** inside the simulator.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

GIGA = 1e9
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15


def gbps(value: float) -> float:
    """Convert a bit rate expressed in Gb/s to bits per second."""
    return value * GIGA


def to_gbps(bits_per_second: float) -> float:
    """Convert a bit rate in bits per second to Gb/s."""
    return bits_per_second / GIGA


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MILLI


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLI


def uw(value: float) -> float:
    """Convert microwatts to watts."""
    return value * MICRO


def db_to_ratio(db_value: float) -> float:
    """Convert a gain/loss in dB to a linear power ratio.

    A positive dB value is a gain (>1 ratio); losses are negative.
    """
    return 10.0 ** (db_value / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.  The ratio must be positive."""
    if ratio <= 0.0:
        raise ConfigError(f"power ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert optical power in dBm to watts (0 dBm = 1 mW)."""
    return MILLI * db_to_ratio(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert optical power in watts to dBm."""
    if watts <= 0.0:
        raise ConfigError(f"optical power must be positive, got {watts!r}")
    return ratio_to_db(watts / MILLI)


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Return the optical frequency (Hz) for a vacuum wavelength in metres."""
    from repro.photonics.constants import SPEED_OF_LIGHT

    if wavelength_m <= 0.0:
        raise ConfigError(f"wavelength must be positive, got {wavelength_m!r}")
    return SPEED_OF_LIGHT / wavelength_m


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a positive finite number and return it."""
    if not math.isfinite(value) or value <= 0.0:
        raise ConfigError(f"{name} must be a positive finite number, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a non-negative finite number and return it."""
    if not math.isfinite(value) or value < 0.0:
        raise ConfigError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
    return value
