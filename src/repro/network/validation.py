"""Fabric self-checks against the topology's own invariants.

A mis-wired fabric produces plausible-looking but wrong results (flits
silently routed to the wrong rack, credits tracking the wrong buffer), so
the builder's output can be audited with :func:`validate_topology` — used
by tests, and cheap enough to run once at simulator construction in
paranoid setups.

The checks are driven by the fabric's
:class:`~repro.network.topologies.base.Topology` rather than hard-coded
mesh geometry, so they hold for every registered shape:

* **counts** — node and per-kind link populations match the topology;
* **local wiring** — every node has injection wiring, every link a
  delivery target;
* **port maps** — a mesh output exists exactly where the topology
  declares a neighbour, delivers into that neighbour's opposite-direction
  input port, and the neighbour relation itself is bijective
  (``neighbor(neighbor(r, d), OPPOSITE[d]) == r``);
* **credit identity** — each mesh output's credit counters *are* the
  neighbour input port's upstream counters, at the per-VC depth;
* **route tables** — following the built tables reaches every
  destination router within ``num_routers`` hops (no black holes, no
  loops).
"""

from __future__ import annotations

from functools import partial

from repro.network.links import EJECTION, INJECTION, MESH
from repro.network.routing import DIRECTION_NAMES, EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.network.topology import NetworkFabric

_DIRECTIONS = (EAST, WEST, NORTH, SOUTH)


def validate_topology(fabric: NetworkFabric) -> list[str]:
    """Audit a built fabric; returns a list of problems (empty = OK)."""
    problems: list[str] = []
    problems += _check_counts(fabric)
    problems += _check_local_wiring(fabric)
    problems += _check_port_maps(fabric)
    problems += _check_credit_identity(fabric)
    problems += _check_route_tables(fabric)
    return problems


def _check_counts(fabric: NetworkFabric) -> list[str]:
    topology = fabric.topology
    problems = []
    expected_nodes = topology.num_nodes
    if len(fabric.nodes) != expected_nodes:
        problems.append(
            f"node count {len(fabric.nodes)} != expected {expected_nodes}"
        )
    if len(fabric.routers) != topology.num_routers:
        problems.append(
            f"router count {len(fabric.routers)} != expected "
            f"{topology.num_routers}"
        )
    injection = len(fabric.links_of_kind(INJECTION))
    ejection = len(fabric.links_of_kind(EJECTION))
    if injection != expected_nodes or ejection != expected_nodes:
        problems.append(
            f"local link counts ({injection} inj, {ejection} ej) != "
            f"{expected_nodes} nodes"
        )
    expected_mesh = topology.mesh_link_count()
    actual_mesh = len(fabric.links_of_kind(MESH))
    if actual_mesh != expected_mesh:
        problems.append(
            f"mesh link count {actual_mesh} != expected {expected_mesh}"
        )
    return problems


def _check_local_wiring(fabric: NetworkFabric) -> list[str]:
    problems = []
    for node in fabric.nodes:
        if node.link is None or node.credits is None:
            problems.append(f"node {node.node_id} has no injection wiring")
            continue
        if node.link.deliver is None:
            problems.append(
                f"node {node.node_id} injection link has no deliver target"
            )
    for link in fabric.links:
        if link.deliver is None:
            problems.append(f"link {link.link_id} ({link.kind}) undelivered")
    return problems


def _check_port_maps(fabric: NetworkFabric) -> list[str]:
    """Outputs exist exactly where the topology declares neighbours."""
    problems = []
    topology = fabric.topology
    locals_ = topology.nodes_per_router
    for router in fabric.routers:
        for direction in _DIRECTIONS:
            port = locals_ + direction
            output = router.outputs[port]
            neighbour_id = topology.neighbor(router.router_id, direction)
            if output is None:
                if neighbour_id is not None:
                    problems.append(
                        f"router {router.router_id} missing "
                        f"{DIRECTION_NAMES[direction]} output"
                    )
                continue
            if neighbour_id is None:
                problems.append(
                    f"router {router.router_id} has an off-topology "
                    f"{DIRECTION_NAMES[direction]} output"
                )
                continue
            # Bijectivity of the neighbour relation: the reverse port of
            # the neighbour must lead straight back.
            back = topology.neighbor(neighbour_id, OPPOSITE[direction])
            if back != router.router_id:
                problems.append(
                    f"router {router.router_id} "
                    f"{DIRECTION_NAMES[direction]} neighbour "
                    f"{neighbour_id} does not map back "
                    f"(its {DIRECTION_NAMES[OPPOSITE[direction]]} "
                    f"neighbour is {back})"
                )
            # The link must deliver into the neighbour's opposite input.
            deliver = output.link.deliver
            if isinstance(deliver, partial):
                target_router = getattr(deliver.func, "__self__", None)
                target_port = deliver.args[0] if deliver.args else None
                neighbour = fabric.routers[neighbour_id]
                if target_router is not neighbour or \
                        target_port != locals_ + OPPOSITE[direction]:
                    problems.append(
                        f"router {router.router_id} "
                        f"{DIRECTION_NAMES[direction]} link does not "
                        f"deliver to the neighbour's "
                        f"{DIRECTION_NAMES[OPPOSITE[direction]]} input"
                    )
    return problems


def _check_credit_identity(fabric: NetworkFabric) -> list[str]:
    """Each mesh output's credits must be the neighbour input's counters."""
    problems = []
    config = fabric.config
    topology = fabric.topology
    locals_ = topology.nodes_per_router
    for router in fabric.routers:
        for direction in _DIRECTIONS:
            output = router.outputs[locals_ + direction]
            if output is None or output.credits is None:
                continue
            neighbour_id = topology.neighbor(router.router_id, direction)
            if neighbour_id is None:
                continue  # reported by _check_port_maps
            neighbour = fabric.routers[neighbour_id]
            in_port = neighbour.inputs[locals_ + OPPOSITE[direction]]
            if output.credits is not in_port.upstream_credits:
                problems.append(
                    f"router {router.router_id} "
                    f"{DIRECTION_NAMES[direction]} credits are not the "
                    f"neighbour's upstream counters"
                )
            for counter in output.credits:
                if counter.capacity != config.buffer_depth // config.num_vcs:
                    problems.append(
                        f"router {router.router_id} credit capacity "
                        f"{counter.capacity} != per-VC depth"
                    )
    return problems


def _check_route_tables(fabric: NetworkFabric) -> list[str]:
    """Following the built route tables must reach every destination."""
    problems = []
    topology = fabric.topology
    locals_ = topology.nodes_per_router
    num_routers = topology.num_routers
    for router in fabric.routers:
        if router._route_table is None:
            problems.append(f"router {router.router_id} has no route table")
            return problems
    for src in range(num_routers):
        for dst in range(num_routers):
            current = src
            hops = 0
            while current != dst:
                out = fabric.routers[current]._route_table[dst]
                if out < 0:
                    problems.append(
                        f"route table black hole: router {current} has no "
                        f"route toward {dst} (path from {src})"
                    )
                    break
                next_id = topology.neighbor(current, out - locals_)
                if next_id is None:
                    problems.append(
                        f"router {current} routes toward {dst} over "
                        f"port {out}, which leads off-topology"
                    )
                    break
                current = next_id
                hops += 1
                if hops > num_routers:
                    problems.append(
                        f"route table loop: {src} -> {dst} exceeds "
                        f"{num_routers} hops"
                    )
                    break
    return problems
