"""Topology self-checks.

A mis-wired topology produces plausible-looking but wrong results (flits
silently routed to the wrong rack, credits tracking the wrong buffer), so
the builder's output can be audited with :func:`validate_topology` — used
by tests, and cheap enough to run once at simulator construction in
paranoid setups.
"""

from __future__ import annotations

from repro.network.links import EJECTION, INJECTION, MESH
from repro.network.routing import DIRECTION_NAMES, OPPOSITE
from repro.network.topology import DIRECTION_OFFSETS, ClusteredMesh


def validate_topology(mesh: ClusteredMesh) -> list[str]:
    """Audit a built topology; returns a list of problems (empty = OK)."""
    problems: list[str] = []
    problems += _check_counts(mesh)
    problems += _check_local_wiring(mesh)
    problems += _check_mesh_wiring(mesh)
    problems += _check_credit_identity(mesh)
    return problems


def _check_counts(mesh: ClusteredMesh) -> list[str]:
    config = mesh.config
    problems = []
    expected_nodes = config.num_nodes
    if len(mesh.nodes) != expected_nodes:
        problems.append(
            f"node count {len(mesh.nodes)} != expected {expected_nodes}"
        )
    injection = len(mesh.links_of_kind(INJECTION))
    ejection = len(mesh.links_of_kind(EJECTION))
    if injection != expected_nodes or ejection != expected_nodes:
        problems.append(
            f"local link counts ({injection} inj, {ejection} ej) != "
            f"{expected_nodes} nodes"
        )
    w, h = config.mesh_width, config.mesh_height
    expected_mesh = 2 * (2 * w * h - w - h)
    actual_mesh = len(mesh.links_of_kind(MESH))
    if actual_mesh != expected_mesh:
        problems.append(
            f"mesh link count {actual_mesh} != expected {expected_mesh}"
        )
    return problems


def _check_local_wiring(mesh: ClusteredMesh) -> list[str]:
    problems = []
    for node in mesh.nodes:
        if node.link is None or node.credits is None:
            problems.append(f"node {node.node_id} has no injection wiring")
            continue
        if node.link.deliver is None:
            problems.append(
                f"node {node.node_id} injection link has no deliver target"
            )
    for link in mesh.links:
        if link.deliver is None:
            problems.append(f"link {link.link_id} ({link.kind}) undelivered")
    return problems


def _check_mesh_wiring(mesh: ClusteredMesh) -> list[str]:
    """Every attached mesh output must lead to the geometric neighbour."""
    problems = []
    config = mesh.config
    locals_ = config.nodes_per_cluster
    for router in mesh.routers:
        for direction, (dx, dy) in DIRECTION_OFFSETS.items():
            port = locals_ + direction
            output = router.outputs[port]
            nx, ny = router.x + dx, router.y + dy
            inside = 0 <= nx < config.mesh_width and \
                0 <= ny < config.mesh_height
            if output is None:
                if inside:
                    problems.append(
                        f"router {router.router_id} missing "
                        f"{DIRECTION_NAMES[direction]} output"
                    )
                continue
            if not inside:
                problems.append(
                    f"router {router.router_id} has an off-mesh "
                    f"{DIRECTION_NAMES[direction]} output"
                )
    return problems


def _check_credit_identity(mesh: ClusteredMesh) -> list[str]:
    """Each mesh output's credits must be the neighbour input's counters."""
    problems = []
    config = mesh.config
    locals_ = config.nodes_per_cluster
    width = config.mesh_width
    for router in mesh.routers:
        for direction, (dx, dy) in DIRECTION_OFFSETS.items():
            port = locals_ + direction
            output = router.outputs[port]
            if output is None or output.credits is None:
                continue
            neighbour = mesh.routers[(router.y + dy) * width + (router.x + dx)]
            in_port = neighbour.inputs[locals_ + OPPOSITE[direction]]
            if output.credits is not in_port.upstream_credits:
                problems.append(
                    f"router {router.router_id} "
                    f"{DIRECTION_NAMES[direction]} credits are not the "
                    f"neighbour's upstream counters"
                )
            for counter in output.credits:
                if counter.capacity != config.buffer_depth // config.num_vcs:
                    problems.append(
                        f"router {router.router_id} credit capacity "
                        f"{counter.capacity} != per-VC depth"
                    )
    return problems
