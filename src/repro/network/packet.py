"""Packet — a multi-flit message between two processing nodes.

Carries the identifiers and timestamps the statistics layer needs.  Packet
latency (paper Section 4.1) runs "from the creation of the first flit of the
packet till the ejection of its last flit from the network at the
destination".
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.network.flit import Flit


class Packet:
    """A message of ``size`` flits from node ``src`` to node ``dst``.

    Attributes
    ----------
    packet_id:
        Unique, monotonically assigned by the traffic layer.
    src, dst:
        Flat processing-node identifiers (not router ids).
    size:
        Number of flits, >= 1.
    create_time:
        Cycle at which the packet was generated (latency epoch start).
    eject_time:
        Cycle at which the tail flit reached the destination node, or -1
        while in flight.
    """

    __slots__ = ("packet_id", "src", "dst", "size", "create_time", "eject_time")

    def __init__(self, packet_id: int, src: int, dst: int, size: int,
                 create_time: int):
        if size < 1:
            raise ConfigError(f"packet size must be >= 1 flit, got {size!r}")
        if src == dst:
            raise ConfigError(f"packet src and dst must differ, both {src!r}")
        self.packet_id = packet_id
        self.src = src
        self.dst = dst
        self.size = size
        self.create_time = create_time
        self.eject_time = -1

    def make_flits(self) -> list[Flit]:
        """Materialise the packet's flit train (head first, tail last)."""
        last = self.size - 1
        return [
            Flit(self, i, is_head=(i == 0), is_tail=(i == last))
            for i in range(self.size)
        ]

    @property
    def latency(self) -> int:
        """Completed-packet latency in cycles.

        Raises if the packet has not been ejected yet: asking for the
        latency of an in-flight packet is always a bookkeeping bug.
        """
        if self.eject_time < 0:
            raise ConfigError(
                f"packet {self.packet_id} is still in flight; no latency yet"
            )
        return self.eject_time - self.create_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, {self.src}->{self.dst}, "
            f"size={self.size}, t={self.create_time})"
        )
