"""Latency/throughput statistics collection.

Implements the metrics of paper Section 4.1:

* **latency** — "the time from the creation of the first flit of the packet
  till the ejection of its last flit from the network at the destination";
* **throughput** — "the injection rate at which average network latency
  exceeds twice the latency at zero network load" (the search lives in
  :mod:`repro.metrics.latency`; this module provides the averages);
* time series of injected/delivered packets for the Fig. 6(a)/Fig. 7
  injection-rate plots.

Packets created during the warm-up period are excluded from the averages but
still simulated, so steady-state numbers are not polluted by cold-start
transients.
"""

from __future__ import annotations

import math
from bisect import insort

from repro.errors import ConfigError
from repro.network.packet import Packet


class StatsCollector:
    """Accumulates packet-level statistics for one simulation run."""

    def __init__(self, warmup_cycles: int = 0, sample_interval: int = 1000):
        if warmup_cycles < 0:
            raise ConfigError("warmup_cycles must be >= 0")
        if sample_interval < 1:
            raise ConfigError("sample_interval must be >= 1")
        self.warmup_cycles = warmup_cycles
        self.sample_interval = sample_interval
        self.packets_created = 0
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.measured_delivered = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        # Latencies are kept as a sorted value -> count histogram rather
        # than one unbounded list per packet: memory is O(distinct latency
        # values) instead of O(packets), and percentile queries walk the
        # already-sorted keys instead of re-sorting millions of samples on
        # every summary() call.  Latency values repeat heavily (they are
        # integer cycle counts), so multi-million-packet runs stay small.
        self._latency_counts: dict[float, int] = {}
        self._latency_order: list[float] = []
        self.in_flight = 0
        #: ``cb(packet, now)`` callbacks fired once per delivered packet.
        #: The simulator aliases this to its hook registry's
        #: ``packet_delivered`` list, so observers attach through
        #: ``Simulator.hooks`` as usual; empty costs one truthiness check.
        self.packet_hooks: list = []
        # Time series: one bucket per sample_interval of (created, delivered)
        # counts and delivered-latency sums (for mean-latency-over-time).
        self._created_series: list[int] = []
        self._delivered_series: list[int] = []
        self._latency_sum_series: list[float] = []

    def reset(self, warmup_cycles: int, sample_interval: int) -> None:
        """Zero every accumulator for a new run on the same collector.

        Nodes and hook bridges hold direct references to this object, so
        warm-start reruns (:meth:`Simulator.reset`) must clear it in
        place rather than swap in a fresh instance.  ``packet_hooks`` is
        deliberately *not* touched: the simulator re-aliases it to the
        new run's hook registry immediately after this call.
        """
        if warmup_cycles < 0:
            raise ConfigError("warmup_cycles must be >= 0")
        if sample_interval < 1:
            raise ConfigError("sample_interval must be >= 1")
        self.warmup_cycles = warmup_cycles
        self.sample_interval = sample_interval
        self.packets_created = 0
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.measured_delivered = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self._latency_counts = {}
        self._latency_order = []
        self.in_flight = 0
        self._created_series = []
        self._delivered_series = []
        self._latency_sum_series = []

    def _bucket(self, now: float) -> int:
        return int(now // self.sample_interval)

    def _grow(self, series: list[int], bucket: int) -> None:
        while len(series) <= bucket:
            series.append(0)

    def packet_created(self, packet: Packet, now: float) -> None:
        """Record a generated packet at cycle ``now``."""
        self.packets_created += 1
        self.in_flight += 1
        bucket = self._bucket(now)
        self._grow(self._created_series, bucket)
        self._created_series[bucket] += 1

    def packet_delivered(self, packet: Packet, now: float) -> None:
        """Record a packet whose tail flit reached its destination node."""
        packet.eject_time = int(now)
        self.packets_delivered += 1
        self.flits_delivered += packet.size
        self.in_flight -= 1
        bucket = self._bucket(now)
        self._grow(self._delivered_series, bucket)
        self._grow(self._latency_sum_series, bucket)
        self._delivered_series[bucket] += 1
        self._latency_sum_series[bucket] += now - packet.create_time
        if packet.create_time >= self.warmup_cycles:
            latency = now - packet.create_time
            self.measured_delivered += 1
            self.latency_sum += latency
            count = self._latency_counts.get(latency)
            if count is None:
                insort(self._latency_order, latency)
                self._latency_counts[latency] = 1
            else:
                self._latency_counts[latency] = count + 1
            if latency > self.latency_max:
                self.latency_max = latency
        hooks = self.packet_hooks
        if hooks:
            for callback in hooks:
                callback(packet, now)

    @property
    def mean_latency(self) -> float:
        """Mean measured packet latency, cycles (NaN with no packets)."""
        if self.measured_delivered == 0:
            return math.nan
        return self.latency_sum / self.measured_delivered

    @property
    def latencies(self) -> list[float]:
        """Every measured latency, in ascending order (expanded view)."""
        out: list[float] = []
        for value in self._latency_order:
            out.extend([value] * self._latency_counts[value])
        return out

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile over measured packets (``fraction`` in [0,1])."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction must lie in [0, 1], got {fraction!r}")
        total = self.measured_delivered
        if total == 0:
            return math.nan
        index = min(total - 1, int(round(fraction * (total - 1))))
        seen = 0
        for value in self._latency_order:
            seen += self._latency_counts[value]
            if index < seen:
                return value
        return self._latency_order[-1]  # pragma: no cover - defensive

    def accepted_rate(self, total_cycles: int) -> float:
        """Delivered packets per cycle over the whole run."""
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        return self.packets_delivered / total_cycles

    def injection_series(self) -> list[float]:
        """Injected packets per cycle, one point per sample interval."""
        return [c / self.sample_interval for c in self._created_series]

    def delivery_series(self) -> list[float]:
        """Delivered packets per cycle, one point per sample interval."""
        return [d / self.sample_interval for d in self._delivered_series]

    def latency_series(self) -> list[float]:
        """Mean latency of packets delivered in each interval (NaN if none).

        This is the latency-over-time view of Fig. 6(b)(c); intervals with
        no deliveries yield NaN rather than a misleading zero.
        """
        return [
            total / count if count else math.nan
            for total, count in zip(self._latency_sum_series,
                                    self._delivered_series)
        ]

    def summary(self, total_cycles: int) -> dict[str, float]:
        """One-shot dictionary of the headline numbers."""
        return {
            "packets_created": float(self.packets_created),
            "packets_delivered": float(self.packets_delivered),
            "mean_latency": self.mean_latency,
            "p95_latency": self.latency_percentile(0.95),
            "max_latency": self.latency_max,
            "accepted_rate": self.accepted_rate(total_cycles),
            "in_flight": float(self.in_flight),
        }
