"""Network fabric builder: topology geometry -> wired simulation state.

The system is a cluster network of racks (paper Figs. 3-4).  Each rack
houses processing-node boards and shares a router board; every
board-to-board and router-to-router connection is a unidirectional
opto-electronic fiber link:

* **injection links** — node board -> router (one per node),
* **ejection links** — router -> node board (one per node),
* **mesh links** — router -> neighbouring router (one per direction the
  topology declares a neighbour in).

Which routers neighbour which — mesh adjacency, torus wrap, cmesh
concentration — is owned by the :class:`~repro.network.topologies.base.Topology`
the config names; :class:`NetworkFabric` instantiates routers and nodes,
asks the topology for the neighbour map, wires the links in a fixed
deterministic order (locals per router first, then the four directions
east/west/north/south per router) and finally has every router resolve
the topology's routing relation into its route table.

The builder wires per-VC credits end to end: every input-port VC buffer has
exactly one upstream credit counter, held by the router output port (mesh
links) or the node (injection links) that feeds it.  Ejection links have no
credits — node sinks always accept.
"""

from __future__ import annotations

from collections import deque
from functools import partial

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.network.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.flit import Flit
from repro.network.links import EJECTION, INJECTION, MESH, Link
from repro.network.packet import Packet
from repro.network.router import OutputPort, Router
from repro.network.routing import EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.network.stats import StatsCollector
from repro.network.topologies import get_topology

#: (dx, dy) per direction constant, matching :mod:`repro.network.routing`.
DIRECTION_OFFSETS = {EAST: (1, 0), WEST: (-1, 0), NORTH: (0, -1), SOUTH: (0, 1)}


class Node:
    """A processing-node board: an injection queue and an ejection sink.

    The node assigns each outgoing packet to one of its injection link's
    virtual channels (the least-loaded one with credits) and streams the
    packet's flits in order on that VC.
    """

    __slots__ = ("node_id", "queue", "link", "credits", "stats", "_vc",
                 "registry")

    def __init__(self, node_id: int, stats: StatsCollector):
        self.node_id = node_id
        self.queue: deque[Flit] = deque()
        self.link: Link | None = None
        self.credits: list[CreditCounter] | None = None
        self.stats = stats
        self._vc = -1
        #: Optional active-node registry maintained by the simulator: a node
        #: registers itself while its source queue holds flits, so the
        #: injection phase only visits nodes with work.
        self.registry = None

    def enqueue_packet(self, packet: Packet) -> None:
        """Queue a freshly generated packet's flits for injection."""
        if not self.queue and self.registry is not None:
            self.registry.add(self)
        self.queue.extend(packet.make_flits())

    def step(self, now: float) -> None:
        """Inject at most one flit into the rack's router this cycle."""
        queue = self.queue
        if not queue:
            return
        link = self.link
        link.pressure_accum += 1.0
        if now < link.disabled_until or now < link.free_at:
            return
        flit = queue[0]
        if flit.is_head:
            chosen, best = -1, 0
            for index, counter in enumerate(self.credits):
                available = counter.available
                if available > best:
                    chosen, best = index, available
            if chosen < 0:
                return
            self._vc = chosen
        credits = self.credits[self._vc]
        if credits.available <= 0:
            return
        credits.consume()
        flit.vc = self._vc
        queue.popleft()
        # link.push inlined (the gate above already verified acceptance).
        service_time = link.service_time
        link.free_at = now + service_time
        link.busy_accum += service_time
        link.flits_carried += 1
        in_flight = link._in_flight
        was_empty = not in_flight
        in_flight.append((link.free_at + link.propagation_cycles, flit))
        if was_empty and link.registry is not None:
            link.registry.add(link)
        if not queue and self.registry is not None:
            self.registry.discard(self)

    def receive_flit(self, flit: Flit, now: float) -> None:
        """Sink an ejected flit; completes the packet on its tail."""
        if flit.is_tail:
            self.stats.packet_delivered(flit.packet, now)

    def reset(self) -> None:
        """Drop queued flits and VC affinity for a warm rerun.

        The wiring (``link``, ``credits``, ``stats``) is structural and
        survives; the stats collector itself is reset separately, in
        place, because this node holds a direct reference to it.
        """
        self.queue.clear()
        self._vc = -1
        self.registry = None

    @property
    def pending_flits(self) -> int:
        """Flits still waiting in the source queue."""
        return len(self.queue)


class NetworkFabric:
    """The fully wired network: routers, nodes and links."""

    def __init__(self, config: NetworkConfig, stats: StatsCollector):
        self.config = config
        self.stats = stats
        self.topology = get_topology(config)
        topology = self.topology
        locals_ = topology.nodes_per_router

        self.routers: list[Router] = [
            Router(
                router_id=router_id,
                num_local=locals_,
                buffer_depth=config.buffer_depth,
                num_vcs=config.num_vcs,
                head_delay=config.head_pipeline_delay,
                topology=topology,
            )
            for router_id in range(topology.num_routers)
        ]

        self.nodes: list[Node] = [
            Node(node_id, stats) for node_id in range(topology.num_nodes)
        ]
        self.links: list[Link] = []
        #: Downstream input-port VC buffers per link id (None for ejection
        #: links) — the power manager reads these for the Bu statistic.
        self.downstream_buffers: list[tuple[InputBuffer, ...] | None] = []

        self._wire_local_links()
        self._wire_mesh_links()
        for router in self.routers:
            router.build_route_table()

    # -- construction helpers ------------------------------------------------

    def _new_link(self, kind: str) -> Link:
        link = Link(
            link_id=len(self.links),
            kind=kind,
            propagation_cycles=self.config.link_propagation_cycles,
        )
        self.links.append(link)
        self.downstream_buffers.append(None)
        return link

    def _new_arbiter(self, router: Router):
        size = router.num_ports * self.config.num_vcs
        if self.config.arbiter == "matrix":
            return MatrixArbiter(size)
        return RoundRobinArbiter(size)

    def _vc_credits(self) -> list[CreditCounter]:
        depth = self.config.buffer_depth // self.config.num_vcs
        return [CreditCounter(depth) for _ in range(self.config.num_vcs)]

    def _wire_local_links(self) -> None:
        """Injection/ejection links between each router and its rack nodes."""
        locals_ = self.topology.nodes_per_router
        for router in self.routers:
            for local in range(locals_):
                node = self.nodes[router.router_id * locals_ + local]

                inject = self._new_link(INJECTION)
                in_port = router.inputs[local]
                inject.deliver = _make_router_sink(router, local)
                credits = self._vc_credits()
                in_port.upstream_credits = credits
                node.link = inject
                node.credits = credits
                self.downstream_buffers[inject.link_id] = in_port.buffers()

                eject = self._new_link(EJECTION)
                eject.deliver = node.receive_flit
                router.attach_output(
                    local,
                    OutputPort(
                        eject, credits=None, num_vcs=self.config.num_vcs,
                        arbiter=self._new_arbiter(router),
                    ),
                )

    def _wire_mesh_links(self) -> None:
        """Unidirectional links between adjacent routers, both ways.

        Per router, directions are wired in the fixed east/west/north/
        south order — link ids and therefore every downstream id-ordered
        iteration are part of the determinism contract.
        """
        topology = self.topology
        locals_ = topology.nodes_per_router
        for router in self.routers:
            for direction in (EAST, WEST, NORTH, SOUTH):
                neighbour_id = topology.neighbor(router.router_id, direction)
                if neighbour_id is None:
                    continue
                neighbour = self.routers[neighbour_id]
                link = self._new_link(MESH)
                in_port_idx = locals_ + OPPOSITE[direction]
                in_port = neighbour.inputs[in_port_idx]
                link.deliver = _make_router_sink(neighbour, in_port_idx)
                credits = self._vc_credits()
                in_port.upstream_credits = credits
                router.attach_output(
                    locals_ + direction,
                    OutputPort(
                        link, credits=credits, num_vcs=self.config.num_vcs,
                        arbiter=self._new_arbiter(router),
                    ),
                )
                self.downstream_buffers[link.link_id] = in_port.buffers()

    # -- warm rerun ----------------------------------------------------------

    def reset(self) -> None:
        """Restore the whole fabric to its freshly-built state in place.

        Every link, router and node clears its run-mutable state (flits,
        credits, arbiters, fault flags, invalidated routes) while the
        object graph — wiring, link ids, credit-counter identity — stays
        untouched, so a subsequent run is bit-identical to one on a
        freshly constructed fabric (hypothesis-tested).  The stats
        collector is *not* reset here: the simulator owns its lifecycle.
        """
        for link in self.links:
            link.reset()
        for router in self.routers:
            router.reset()
        for node in self.nodes:
            node.reset()

    # -- queries -------------------------------------------------------------

    def node_for(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self.nodes):
            raise ConfigError(
                f"node_id must be in [0, {len(self.nodes)}), got {node_id!r}"
            )
        return self.nodes[node_id]

    def node_id(self, rack_x: int, rack_y: int, local: int) -> int:
        """Flat node id for (router column, router row, node-at-router).

        Used by the hot-spot workload, whose paper description names
        "node 4 in rack(3,5)".  Coordinates address the *router* grid —
        under cmesh a "rack" is the concentrated cluster.
        """
        topology = self.topology
        width, height = topology.grid_shape
        locals_ = topology.nodes_per_router
        if not (0 <= rack_x < width and 0 <= rack_y < height):
            raise ConfigError(
                f"rack ({rack_x}, {rack_y}) outside {width}x{height} grid"
            )
        if not 0 <= local < locals_:
            raise ConfigError(
                f"local index must be in [0, {locals_}), got {local!r}"
            )
        return topology.router_at(rack_x, rack_y) * locals_ + local

    def links_of_kind(self, kind: str) -> list[Link]:
        return [link for link in self.links if link.kind == kind]

    @property
    def total_pending_flits(self) -> int:
        """Flits still queued at sources (drain check for trace runs)."""
        return sum(node.pending_flits for node in self.nodes)


def _make_router_sink(router: Router, port: int):
    """Bind a delivery callback for a link feeding ``router``'s ``port``.

    A C-level ``partial`` rather than a Python closure: the callback runs
    once per delivered flit, and the extra interpreter frame a closure
    would add is pure overhead on the deliver phase.
    """
    return partial(router.receive_flit, port)


#: Backwards-compatible name from when the builder hard-coded the 2-D
#: mesh; the fabric is topology-parameterised now.
ClusteredMesh = NetworkFabric
