"""Switch-allocation arbiters.

Each router output port arbitrates among the input ports requesting it every
cycle.  Two classic schemes are provided:

* :class:`RoundRobinArbiter` — the default; strongly fair, one-hot grant,
  rotating priority (what PopNet-style simulators use for SA).
* :class:`MatrixArbiter` — least-recently-served; provided as a design-space
  extension and exercised by the ablation benchmarks.

Arbiters are tiny pieces of mutable state with a single ``grant`` method so
they can be unit- and property-tested in isolation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters."""

    __slots__ = ("size", "_next")

    def __init__(self, size: int):
        if size < 1:
            raise ConfigError(f"arbiter size must be >= 1, got {size!r}")
        self.size = size
        self._next = 0

    def reset(self) -> None:
        """Restore construction-time priority (warm rerun)."""
        self._next = 0

    def grant(self, requests: Sequence[int]) -> int:
        """Grant one requester and rotate priority past it.

        ``requests`` is the collection of requesting indices (any order).
        Returns the granted index, or -1 if no one requested.
        """
        if not requests:
            return -1
        best = -1
        best_key = self.size  # larger than any rotated distance
        for r in requests:
            if not 0 <= r < self.size:
                raise ConfigError(f"request index {r!r} outside [0, {self.size})")
            key = (r - self._next) % self.size
            if key < best_key:
                best_key = key
                best = r
        self._next = (best + 1) % self.size
        return best


class MatrixArbiter:
    """Least-recently-served arbiter using the classic priority matrix.

    ``_beats[i][j]`` is True when requester ``i`` currently outranks ``j``.
    The winner is the requester that beats every other requester; after a
    grant the winner drops below everyone (its row clears, its column sets).
    """

    __slots__ = ("size", "_beats")

    def __init__(self, size: int):
        if size < 1:
            raise ConfigError(f"arbiter size must be >= 1, got {size!r}")
        self.size = size
        # Initialise with a total order: lower index beats higher index.
        self._beats = [[i < j for j in range(size)] for i in range(size)]

    def reset(self) -> None:
        """Restore the construction-time total order (warm rerun)."""
        beats = self._beats
        for i in range(self.size):
            row = beats[i]
            for j in range(self.size):
                row[j] = i < j

    def grant(self, requests: Sequence[int]) -> int:
        """Grant the least-recently-served requester, or -1 if none."""
        if not requests:
            return -1
        active = set()
        for r in requests:
            if not 0 <= r < self.size:
                raise ConfigError(f"request index {r!r} outside [0, {self.size})")
            active.add(r)
        # The matrix invariant makes the winner unique, but scan a sorted
        # view anyway: if the invariant ever breaks, the failure mode is a
        # deterministic (reproducible) mis-grant rather than a heisenbug.
        ordered = sorted(active)
        winner = -1
        for i in ordered:
            if all(self._beats[i][j] for j in ordered if j != i):
                winner = i
                break
        if winner < 0:
            # The matrix invariant guarantees a unique winner among any
            # subset; reaching here means the matrix was corrupted.
            raise ConfigError("priority matrix lost its total-order invariant")
        for j in range(self.size):
            if j != winner:
                self._beats[winner][j] = False
                self._beats[j][winner] = True
        return winner
