"""The cycle-driven simulator core, built on the pluggable engine layer.

Ties topology, traffic, routers and the power manager together.  One call
to :meth:`Simulator.step` advances the whole system one router cycle, in a
fixed phase order chosen so every component sees a consistent picture:

1. **deliver** — flits whose link arrival time has passed enter downstream
   input buffers (or node sinks);
2. **route** — every router *with buffered flits* runs one switch-
   allocation/traversal cycle, pushing winners onto their output links;
3. **inject** — node boards *with queued flits* push source-queue flits
   onto injection links;
4. **generate** — the traffic source creates this cycle's new packets;
5. **control** — the event wheel runs whatever control work is due this
   cycle: link transition completions, window-boundary policy evaluation,
   laser epochs, power sampling and the stall watchdog.

The engine makes each phase cost O(active components), not O(network):
links, routers and nodes register into :class:`~repro.engine.active.ActiveSet`
registries while they hold work and are skipped otherwise, and the power
manager's periodic work is event-scheduled on an
:class:`~repro.engine.wheel.EventWheel` instead of being polled with
modulo checks every cycle.  Construct with ``step_all=True`` to force the
legacy step-everything/poll-everything behaviour — runs are bit-identical
in either mode (property-tested), only the wall-clock differs.

Observers (profilers, watchdogs, metrics samplers) attach through
:attr:`Simulator.hooks`, a typed :class:`~repro.engine.hooks.HookRegistry`
— nothing else is hard-wired into the step loop.

Determinism: given identical configs and seeds, runs are bit-identical —
there is no wall-clock or unordered-set iteration in any decision path
(active sets are iterated via sorted snapshots, and same-cycle events fire
in a fixed priority order).
"""

from __future__ import annotations

from math import ceil
from typing import TYPE_CHECKING

from repro.config import SimulationConfig
from repro.engine.active import ActiveSet
from repro.engine.hooks import HookRegistry
from repro.engine.schedule import DeliverySchedule
from repro.engine.wheel import PRI_WATCHDOG, EventWheel
from repro.errors import ConfigError, SimulationError
from repro.network.links import Link
from repro.network.stats import StatsCollector
from repro.network.topology import NetworkFabric, Node
from repro.traffic.base import TrafficSource

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.core.manager import NetworkPowerManager
    from repro.network.router import Router
    from repro.reliability.manager import ReliabilityManager
    from repro.telemetry.recorder import TraceRecorder

#: Cycles between stall-watchdog progress checks.
WATCHDOG_INTERVAL = 256

#: Step-phase names, in execution order (also the profiler's row labels).
PHASES = ("deliver", "route", "inject", "generate", "control")


def _stall_error(sim: "Simulator", description: str) -> SimulationError:
    """Build a stall diagnosis (failure path only).

    The ``congestion_report`` import and its network-wide snapshot walk
    live here so the periodic stall *checks* — which run for the whole
    life of every healthy simulation — never pay for the diagnosis
    machinery: the common path is a couple of integer compares and
    allocates nothing (regression-tested).
    """
    from repro.metrics.inspect import congestion_report

    return SimulationError(f"{description}\n{congestion_report(sim)}")


def _asleep_note(sim: "Simulator") -> str:
    """Stall-diagnosis addendum naming links parked in LINK_OFF.

    A wake only triggers at a window boundary, so a stall report that
    ignored sleeping links would send the reader hunting for a flow-control
    bug that is actually a sleeping fiber.  Failure path only.
    """
    power = sim.power
    if power is None:
        return ""
    asleep = power.asleep_count()
    if not asleep:
        return ""
    return f" ({asleep} links asleep in LINK_OFF awaiting a window wake)"


class StallWatchdog:
    """Turns a silent simulator hang into a diagnosis.

    Attaches through the engine: a ``delivery`` hook records the last cycle
    any flit moved off a link, and a recurring event-wheel check raises
    :class:`~repro.errors.SimulationError` when packets are in flight but
    nothing has moved for ``limit`` cycles.  (With ``step_all=True`` the
    simulator falls back to the equivalent legacy per-cycle poll.)
    """

    __slots__ = ("sim", "limit", "_last_progress_cycle")

    def __init__(self, sim: "Simulator", limit: int):
        self.sim = sim
        self.limit = limit
        # Start from the simulator's current cycle, not 0: a watchdog
        # attached to a simulator that has already run would otherwise
        # report a bogus stall spanning the whole pre-attach history.
        self._last_progress_cycle = sim.cycle

    def attach(self) -> "StallWatchdog":
        self.sim.hooks.add("delivery", self._on_delivery)
        self.sim.wheel.schedule(self.sim.cycle, self._check, PRI_WATCHDOG)
        return self

    def _on_delivery(self, link: Link, flit, now: int) -> None:
        self._last_progress_cycle = now

    def _check(self, now: int) -> None:
        stalled = now - self._last_progress_cycle
        if self.sim.stats.in_flight > 0 and stalled >= self.limit:
            raise _stall_error(
                self.sim,
                f"no flit delivered for {stalled} cycles with "
                f"{self.sim.stats.in_flight} packets in flight — likely a "
                f"flow-control bug.{_asleep_note(self.sim)}",
            )
        self.sim.wheel.schedule(now + WATCHDOG_INTERVAL, self._check,
                                PRI_WATCHDOG)


class Simulator:
    """One simulated power-aware (or baseline) networked system."""

    def __init__(self, config: SimulationConfig, traffic: TrafficSource,
                 *, step_all: bool = False):
        if traffic.num_nodes != config.network.num_nodes:
            raise ConfigError(
                f"traffic source built for {traffic.num_nodes} nodes but the "
                f"network has {config.network.num_nodes}"
            )
        self.config = config
        self.traffic = traffic
        self.stats = StatsCollector(config.warmup_cycles,
                                    config.sample_interval)
        self.network = NetworkFabric(config.network, self.stats)
        if config.validate_topology:
            from repro.network.validation import validate_topology

            problems = validate_topology(self.network)
            if problems:
                raise ConfigError(
                    "topology validation failed:\n  "
                    + "\n  ".join(problems)
                )
        self.power: "NetworkPowerManager | None" = None
        if config.power is not None:
            # Imported here to break the package cycle: the power manager
            # wraps network links, while the simulator wraps the manager.
            from repro.core.manager import NetworkPowerManager

            self.power = NetworkPowerManager(
                self.network, config.power, config.network
            )
        self.step_all = step_all
        self._init_run_state(config)

    def reset(self, config: SimulationConfig,
              traffic: TrafficSource) -> None:
        """Rerun-in-place: rebind this simulator to a new point.

        The structural parts of ``config`` (the network tree and the
        power ladder/bands geometry) must match the simulator's current
        ones — everything else (seed, policy scalars, transitions,
        warmup/sampling, faults, telemetry, backend) may change freely.
        The contract is bit-identity with fresh construction
        (hypothesis-tested over every topology, with and without
        faults); the payoff is skipping fabric/route-table/operating-
        point construction for every point after a worker's first.
        """
        if self.step_all:
            raise ConfigError(
                "reset() needs the event-driven engine; step_all "
                "simulators are the legacy reference and stay cold"
            )
        if traffic.num_nodes != config.network.num_nodes:
            raise ConfigError(
                f"traffic source built for {traffic.num_nodes} nodes but the "
                f"network has {config.network.num_nodes}"
            )
        if config.network != self.config.network:
            raise ConfigError(
                "reset() cannot change the network structure "
                "(build a fresh Simulator for a different fabric)"
            )
        old_power = self.config.power
        self.config = config
        self.traffic = traffic
        self.stats.reset(config.warmup_cycles, config.sample_interval)
        self.network.reset()
        if config.power is None:
            self.power = None
        elif self.power is not None and old_power is not None \
                and self.power.structurally_compatible(config.power):
            self.power.reset(config.power)
        else:
            from repro.core.manager import NetworkPowerManager

            self.power = NetworkPowerManager(
                self.network, config.power, config.network
            )
        self._init_run_state(config)

    def _init_run_state(self, config: SimulationConfig) -> None:
        """Per-run engine wiring, shared by ``__init__`` and ``reset``.

        Everything here is cheap and rebuilt from scratch each run — a
        fresh hook registry, event wheel, active-set registries, batch
        gate, reliability manager and watchdog — so a reset simulator is
        indistinguishable from a fresh one by construction.
        """
        self.cycle = 0
        self.hooks = HookRegistry()
        # Alias (not copy): the stats collector fires the registry's
        # packet_delivered list directly, so add/remove stay in sync.
        self.stats.packet_hooks = self.hooks.packet_delivered
        if self.power is not None:
            self.power.hooks = self.hooks
        self._phases = tuple(
            (name, getattr(self, f"_phase_{name}")) for name in PHASES
        )
        self._phase_fns = tuple(fn for _, fn in self._phases)
        self._last_delivery_count = 0
        self._last_delivery_cycle = 0
        self.reliability: "ReliabilityManager | None" = None
        self.telemetry: "TraceRecorder | None" = None
        step_all = self.step_all
        if config.telemetry is not None:
            # Imported here to break the package cycle (the recorder
            # observes simulator hooks).  Attaching is pure observation:
            # runs with and without a recorder are bit-identical
            # (property-tested), in either engine mode.
            from repro.telemetry.recorder import TraceRecorder

            self.telemetry = TraceRecorder(config.telemetry).attach(self)
        if step_all:
            if config.faults is not None:
                raise ConfigError(
                    "fault injection needs the event-driven engine for its "
                    "scheduled scenarios; it cannot run with step_all=True"
                )
            # Legacy mode: visit every component every cycle and poll for
            # control work.  Kept as the reference for equivalence tests.
            self.wheel = None
            self._active_links: ActiveSet[Link] | DeliverySchedule | None = \
                None
            self._active_routers: ActiveSet["Router"] | None = None
            self._active_nodes: ActiveSet[Node] | None = None
            self.batch = None
            return
        self.wheel = EventWheel()
        if config.faults is None:
            # Fault-free links never reschedule an in-flight arrival, so
            # delivery can be event-armed instead of scanned (bit-identical;
            # see engine/schedule.py).
            self._active_links = DeliverySchedule()
        else:
            self._active_links = ActiveSet(_link_key)
        self._active_routers = ActiveSet(_router_key)
        self._active_nodes = ActiveSet(_node_key)
        for link in self.network.links:
            link.registry = self._active_links
        for router in self.network.routers:
            router.registry = self._active_routers
        for node in self.network.nodes:
            node.registry = self._active_nodes
        self.batch = None
        if config.backend == "numpy" and config.faults is None:
            # Fault runs keep the scalar route phase wholesale: reroutes
            # and retransmissions mutate latched state mid-phase in ways
            # the vector gate's begin-of-phase snapshot cannot see.
            from repro.network.batch import BatchRouteBackend

            self.batch = BatchRouteBackend(self.network,
                                           self._active_routers)
        if self.power is not None:
            self.power.schedule_events(
                self.wheel, sample_interval=config.sample_interval
            )
        if config.faults is not None:
            # Imported here to break the package cycle (reliability wraps
            # network links and the power manager).
            from repro.reliability.manager import ReliabilityManager

            self.reliability = ReliabilityManager(
                self.network, self.power, config.network, config.faults,
                self.hooks, self.wheel,
            )
        if config.stall_limit_cycles:
            StallWatchdog(self, config.stall_limit_cycles).attach()

    def step(self) -> None:
        """Advance the system by one router cycle."""
        now = self.cycle
        hooks = self.hooks
        if hooks.phase_start or hooks.phase_end:
            starts, ends = hooks.phase_start, hooks.phase_end
            for name, phase in self._phases:
                for callback in starts:
                    callback(name, now)
                phase(now)
                for callback in ends:
                    callback(name, now)
        else:
            for _, phase in self._phases:
                phase(now)
        self.cycle = now + 1

    # -- phases ------------------------------------------------------------------

    def _phase_deliver(self, now: int) -> None:
        """Move link arrivals into downstream buffers / node sinks.

        Active mode iterates a sorted snapshot of the active-link set (it
        is mutated during iteration: links drain, and pushes in phase 2/3
        re-register for *later* cycles); snapshotting also keeps delivery
        order identical to the step-everything iteration over all links.
        """
        active = self._active_links
        if type(active) is DeliverySchedule:
            # Event-armed delivery: only links with an arrival actually due
            # are visited, in ascending link-id order (same order as the
            # scans below).
            due = active.pop_due(now)
            if not due:
                return
            delivery_hooks = self.hooks.delivery
            if not delivery_hooks:
                # Hot loop: the schedule's rearm/retire bodies are inlined
                # against its bucket/member dicts (one wake-up per link per
                # arrival made the method calls a measurable share), and
                # the per-link scalars — link_id (read up to three times),
                # the deque's popleft, armed.get — are bound once.
                buckets = active._buckets
                members = active._members
                armed = active._armed
                armed_get = armed.get
                for link in due:
                    in_flight = link._in_flight
                    deliver = link.deliver
                    popleft = in_flight.popleft
                    link_id = link.link_id
                    while in_flight and in_flight[0][0] <= now:
                        deliver(popleft()[1], now)
                    if in_flight:
                        due_cycle = ceil(in_flight[0][0])
                        if armed_get(link_id) == due_cycle:
                            continue
                        armed[link_id] = due_cycle
                        bucket = buckets.get(due_cycle)
                        if bucket is None:
                            buckets[due_cycle] = [(link_id, link)]
                        else:
                            bucket.append((link_id, link))
                    else:
                        del members[link_id]
                return
            for link in due:
                in_flight = link._in_flight
                deliver = link.deliver
                arrivals = []
                while in_flight and in_flight[0][0] <= now:
                    arrivals.append(in_flight.popleft()[1])
                for flit in arrivals:
                    deliver(flit, now)
                for flit in arrivals:
                    for callback in delivery_hooks:
                        callback(link, flit, now)
                if in_flight:
                    active.rearm(link)
                else:
                    active.retire(link)
            return
        if active is not None:
            if not active:
                return
            links = active.snapshot()
        else:
            links = self.network.links
        delivery_hooks = self.hooks.delivery
        for link in links:
            if link.faults is None:
                # Fast path: peek the arrival deque directly.  At load most
                # active links have their next arrival in the future, and a
                # ``pop_arrivals`` call returning an empty list per link per
                # cycle was a measurable share of the deliver phase.
                in_flight = link._in_flight
                if not in_flight:
                    if active is not None:
                        active.discard(link)
                    continue
                if in_flight[0][0] > now:
                    continue
                deliver = link.deliver
                if delivery_hooks:
                    arrivals = []
                    while in_flight and in_flight[0][0] <= now:
                        arrivals.append(in_flight.popleft()[1])
                    for flit in arrivals:
                        deliver(flit, now)
                    for flit in arrivals:
                        for callback in delivery_hooks:
                            callback(link, flit, now)
                else:
                    while in_flight and in_flight[0][0] <= now:
                        deliver(in_flight.popleft()[1], now)
                if active is not None and not in_flight:
                    active.discard(link)
                continue
            # Fault-injected links delegate to the fault state's arrival
            # filter (CRC trials, retransmission protocol).
            arrivals = link.pop_arrivals(now)
            if arrivals:
                deliver = link.deliver
                for flit in arrivals:
                    deliver(flit, now)
                if delivery_hooks:
                    for flit in arrivals:
                        for callback in delivery_hooks:
                            callback(link, flit, now)
            if active is not None and not link.has_in_flight:
                active.discard(link)

    def _phase_route(self, now: int) -> None:
        """Switch allocation + traversal for every router with work."""
        batch = self.batch
        if batch is not None:
            batch.step(now)
            return
        active = self._active_routers
        if active is not None:
            if active:
                for router in active.snapshot():
                    router.step(now)
        else:
            for router in self.network.routers:
                router.step(now)

    def _phase_inject(self, now: int) -> None:
        """Source-queue injection for every node with queued flits."""
        active = self._active_nodes
        if active is not None:
            if active:
                for node in active.snapshot():
                    node.step(now)
        else:
            for node in self.network.nodes:
                if node.queue:
                    node.step(now)

    def _phase_generate(self, now: int) -> None:
        """Create this cycle's new traffic."""
        nodes = self.network.nodes
        stats = self.stats
        for packet in self.traffic.generate(now):
            stats.packet_created(packet, now)
            nodes[packet.src].enqueue_packet(packet)

    def _phase_control(self, now: int) -> None:
        """Run control work due this cycle.

        Active mode services the event wheel (transitions, windows, epochs,
        samples, watchdog — in that priority order); legacy mode polls with
        the historical modulo checks.
        """
        wheel = self.wheel
        if wheel is not None:
            if wheel.next_cycle <= now:
                wheel.service(now)
            return
        power = self.power
        if power is not None:
            power.on_cycle(now)
            if now % self.config.sample_interval == 0:
                power.sample_power(now)
        limit = self.config.stall_limit_cycles
        if limit and now % WATCHDOG_INTERVAL == 0:
            self._check_stall(now, limit)

    def _check_stall(self, now: int, limit: int) -> None:
        """Legacy (polled) stall check, used only with ``step_all=True``."""
        delivered = self.stats.packets_delivered
        if delivered != self._last_delivery_count:
            self._last_delivery_count = delivered
            self._last_delivery_cycle = now
        elif self.stats.in_flight > 0 and \
                now - self._last_delivery_cycle >= limit:
            raise _stall_error(
                self,
                f"no packet delivered for {now - self._last_delivery_cycle} "
                f"cycles with {self.stats.in_flight} in flight — likely a "
                f"flow-control bug.{_asleep_note(self)}",
            )

    # -- driving -----------------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Run ``cycles`` more cycles.

        Whether the run is instrumented (fires ``phase_start``/``phase_end``
        hooks) is decided once on entry; attach phase hooks before calling.
        """
        if cycles < 0:
            raise ConfigError(f"cycles must be >= 0, got {cycles!r}")
        hooks = self.hooks
        if hooks.phase_start or hooks.phase_end:
            step = self.step
            for _ in range(cycles):
                step()
            return
        # Uninstrumented fast loop: the route/inject/generate/control phase
        # bodies are inlined here (loop-invariant bindings hoisted) — keep
        # them in sync with the ``_phase_*`` methods, which remain the
        # source of truth for the instrumented :meth:`step` path.
        deliver = self._phase_deliver
        active_routers = self._active_routers
        active_nodes = self._active_nodes
        batch = self.batch
        wheel = self.wheel
        routers = self.network.routers
        nodes = self.network.nodes
        stats = self.stats
        generate = self.traffic.generate
        for _ in range(cycles):
            now = self.cycle
            deliver(now)
            if batch is not None:
                batch.step(now)
            elif active_routers is not None:
                if active_routers:
                    for router in active_routers.snapshot():
                        router.step(now)
            else:
                for router in routers:
                    router.step(now)
            if active_nodes is not None:
                if active_nodes:
                    for node in active_nodes.snapshot():
                        node.step(now)
            else:
                for node in nodes:
                    if node.queue:
                        node.step(now)
            for packet in generate(now):
                stats.packet_created(packet, now)
                nodes[packet.src].enqueue_packet(packet)
            if wheel is not None:
                if wheel.next_cycle <= now:
                    wheel.service(now)
            else:
                self._phase_control(now)
            self.cycle = now + 1

    def run_until_drained(self, max_cycles: int,
                          poll_interval: int = 512) -> bool:
        """Run until the trace is replayed and all packets delivered.

        Returns True if the network drained before ``max_cycles``.  Used by
        trace experiments so latency statistics cover every packet.  The
        drain check runs every ``poll_interval`` cycles *relative to the
        starting cycle*, so resuming from an arbitrary cycle still polls on
        schedule.

        Each poll interval is executed as one :meth:`run` batch, so the
        cycles between drain checks go through the same uninstrumented fast
        path ``run`` uses instead of paying the per-call :meth:`step` hook
        check every cycle (regression-tested bit-identical to the stepped
        loop).
        """
        if max_cycles < 1:
            raise ConfigError("max_cycles must be >= 1")
        if poll_interval < 1:
            raise ConfigError(
                f"poll_interval must be >= 1, got {poll_interval!r}"
            )
        start = self.cycle
        deadline = start + max_cycles
        while self.cycle < deadline:
            chunk = min(poll_interval, deadline - self.cycle)
            self.run(chunk)
            if chunk == poll_interval and self._is_drained():
                return True
        return self._is_drained()

    def _is_drained(self) -> bool:
        if self._active_links is not None:
            links_idle = not self._active_links
        else:
            links_idle = not any(
                link.has_in_flight for link in self.network.links
            )
        return (
            self.traffic.exhausted(self.cycle)
            and self.stats.in_flight == 0
            and links_idle
            and self.network.total_pending_flits == 0
        )

    def finalize(self) -> None:
        """Flush power-accounting integrals and telemetry buffers."""
        if self.power is not None:
            self.power.finalize(self.cycle)
        if self.telemetry is not None:
            self.telemetry.flush()

    # -- results ----------------------------------------------------------------

    def relative_power(self) -> float:
        """Average power vs. the non-power-aware baseline (1.0 if baseline)."""
        if self.power is None:
            return 1.0
        self.finalize()
        return self.power.relative_power(self.cycle)

    def summary(self) -> dict[str, float]:
        """Headline metrics of the run so far."""
        result = self.stats.summary(max(1, self.cycle))
        result["relative_power"] = self.relative_power()
        result["cycles"] = float(self.cycle)
        if self.reliability is not None:
            for key, value in self.reliability.report().as_dict().items():
                result[f"reliability_{key}"] = value
        return result


def _link_key(link: Link) -> int:
    return link.link_id


def _router_key(router: "Router") -> int:
    return router.router_id


def _node_key(node: Node) -> int:
    return node.node_id
