"""The cycle-driven simulator core.

Ties topology, traffic, routers and the power manager together.  One call
to :meth:`Simulator.step` advances the whole system one router cycle, in a
fixed phase order chosen so every component sees a consistent picture:

1. **deliver** — flits whose link arrival time has passed enter downstream
   input buffers (or node sinks);
2. **route** — every router runs one switch-allocation/traversal cycle,
   pushing winners onto their output links;
3. **inject** — node boards push source-queue flits onto injection links;
4. **generate** — the traffic source creates this cycle's new packets;
5. **power** — the power manager advances transitions and, on window/epoch
   boundaries, runs the policy controllers; power samples are taken every
   ``sample_interval`` cycles.

Determinism: given identical configs and seeds, runs are bit-identical —
there is no wall-clock or unordered-set iteration in any decision path
(the delivery loop iterates a sorted snapshot of the active-link set).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SimulationConfig
from repro.errors import ConfigError, SimulationError
from repro.network.links import Link
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh
from repro.traffic.base import TrafficSource

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.core.manager import NetworkPowerManager


class Simulator:
    """One simulated power-aware (or baseline) networked system."""

    def __init__(self, config: SimulationConfig, traffic: TrafficSource):
        if traffic.num_nodes != config.network.num_nodes:
            raise ConfigError(
                f"traffic source built for {traffic.num_nodes} nodes but the "
                f"network has {config.network.num_nodes}"
            )
        self.config = config
        self.traffic = traffic
        self.stats = StatsCollector(config.warmup_cycles,
                                    config.sample_interval)
        self.network = ClusteredMesh(config.network, self.stats)
        self.power: "NetworkPowerManager | None" = None
        if config.power is not None:
            # Imported here to break the package cycle: the power manager
            # wraps network links, while the simulator wraps the manager.
            from repro.core.manager import NetworkPowerManager

            self.power = NetworkPowerManager(
                self.network, config.power, config.network
            )
        self.cycle = 0
        self._active_links: set[Link] = set()
        for link in self.network.links:
            link.registry = self._active_links
        self._last_delivery_count = 0
        self._last_delivery_cycle = 0

    def step(self) -> None:
        """Advance the system by one router cycle."""
        now = self.cycle

        # 1. Deliver link arrivals.  Snapshot + sort for determinism: the
        #    set is mutated during iteration (links drain and new pushes in
        #    phase 2/3 re-register for *later* cycles).
        if self._active_links:
            for link in sorted(self._active_links, key=_link_key):
                arrivals = link.pop_arrivals(now)
                if arrivals:
                    deliver = link.deliver
                    for flit in arrivals:
                        deliver(flit, now)
                if not link.has_in_flight:
                    self._active_links.discard(link)

        # 2. Router switch allocation + traversal.
        for router in self.network.routers:
            router.step(now)

        # 3. Node injection.
        for node in self.network.nodes:
            if node.queue:
                node.step(now)

        # 4. New traffic.
        for packet in self.traffic.generate(now):
            self.stats.packet_created(packet, now)
            self.network.nodes[packet.src].enqueue_packet(packet)

        # 5. Power control.
        power = self.power
        if power is not None:
            power.on_cycle(now)
            if now % self.config.sample_interval == 0:
                power.sample_power(now)

        # 6. Stall watchdog (cheap: checked every 256 cycles).
        limit = self.config.stall_limit_cycles
        if limit and now % 256 == 0:
            self._check_stall(now, limit)

        self.cycle = now + 1

    def _check_stall(self, now: int, limit: int) -> None:
        delivered = self.stats.packets_delivered
        if delivered != self._last_delivery_count:
            self._last_delivery_count = delivered
            self._last_delivery_cycle = now
        elif self.stats.in_flight > 0 and \
                now - self._last_delivery_cycle >= limit:
            from repro.metrics.inspect import congestion_report

            raise SimulationError(
                f"no packet delivered for {now - self._last_delivery_cycle} "
                f"cycles with {self.stats.in_flight} in flight — likely a "
                f"flow-control bug.\n{congestion_report(self)}"
            )

    def run(self, cycles: int) -> None:
        """Run ``cycles`` more cycles."""
        if cycles < 0:
            raise ConfigError(f"cycles must be >= 0, got {cycles!r}")
        step = self.step
        for _ in range(cycles):
            step()

    def run_until_drained(self, max_cycles: int,
                          poll_interval: int = 512) -> bool:
        """Run until the trace is replayed and all packets delivered.

        Returns True if the network drained before ``max_cycles``.  Used by
        trace experiments so latency statistics cover every packet.
        """
        if max_cycles < 1:
            raise ConfigError("max_cycles must be >= 1")
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            self.step()
            if self.cycle % poll_interval == 0 and self._is_drained():
                return True
        return self._is_drained()

    def _is_drained(self) -> bool:
        return (
            self.traffic.exhausted(self.cycle)
            and self.stats.in_flight == 0
            and not self._active_links
            and self.network.total_pending_flits == 0
        )

    def finalize(self) -> None:
        """Flush power-accounting integrals at the end of a run."""
        if self.power is not None:
            self.power.finalize(self.cycle)

    # -- results ----------------------------------------------------------------

    def relative_power(self) -> float:
        """Average power vs. the non-power-aware baseline (1.0 if baseline)."""
        if self.power is None:
            return 1.0
        self.finalize()
        return self.power.relative_power(self.cycle)

    def summary(self) -> dict[str, float]:
        """Headline metrics of the run so far."""
        result = self.stats.summary(max(1, self.cycle))
        result["relative_power"] = self.relative_power()
        result["cycles"] = float(self.cycle)
        return result


def _link_key(link: Link) -> int:
    return link.link_id
