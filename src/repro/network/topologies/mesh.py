"""The clustered 2-D mesh (the paper's substrate) and the 1-D line.

:class:`MeshTopology` is the bit-identical extraction of the geometry the
builder and router used to hard-code: row-major router ids, no wrap
links, dimension-order (or west-first) routing via the functions in
:mod:`repro.network.routing`, Manhattan hop counts.  The legacy
closed-form mean hop count is preserved exactly so the analytic latency
model does not move by a ULP under the refactor.

:class:`LineTopology` is the degenerate 1-high mesh: every router in one
row, east/west links only.  It exists mostly as the smallest non-trivial
exercise of the topology contract (and as the cheapest substrate for
power-policy experiments where routing is irrelevant).
"""

from __future__ import annotations

from repro.network.routing import (
    EAST,
    NORTH,
    SOUTH,
    WEST,
    RoutingFunction,
    get_routing_function,
)
from repro.network.topologies.base import Topology


class MeshTopology(Topology):
    """Row-major 2-D mesh; single VC class (dimension order is acyclic)."""

    name = "mesh"

    def __init__(self, grid_width: int, grid_height: int,
                 nodes_per_router: int, routing: str = "xy"):
        super().__init__(grid_width, grid_height, nodes_per_router)
        self.routing = routing
        self._route_fn: RoutingFunction = get_routing_function(routing)

    def neighbor(self, router_id: int, direction: int) -> int | None:
        x, y = self._coords[router_id]
        if direction == EAST:
            x += 1
        elif direction == WEST:
            x -= 1
        elif direction == SOUTH:
            y += 1
        else:
            y -= 1
        if 0 <= x < self.grid_width and 0 <= y < self.grid_height:
            return y * self.grid_width + x
        return None

    def route_direction(self, router_id: int, dst_router: int) -> int:
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        return self._route_fn(src_x, src_y, dst_x, dst_y)

    def _productive_directions(self, router_id: int,
                               dst_router: int) -> list[int]:
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        productive = []
        if dst_x > src_x:
            productive.append(EAST)
        elif dst_x < src_x:
            productive.append(WEST)
        if dst_y > src_y:
            productive.append(SOUTH)
        elif dst_y < src_y:
            productive.append(NORTH)
        return productive

    def min_hops(self, router_id: int, dst_router: int) -> int:
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        return abs(dst_x - src_x) + abs(dst_y - src_y)

    def mean_min_hops(self) -> float:
        # The legacy closed form (mean Manhattan distance over uniform
        # ordered pairs, self-pairs included) — kept operation-for-
        # operation so the analytic latency model is bit-identical.
        w, h = self.grid_width, self.grid_height
        return (w * w - 1) / (3.0 * w) + (h * h - 1) / (3.0 * h)


class LineTopology(MeshTopology):
    """All routers in one row; east/west links only."""

    name = "line"

    def __init__(self, length: int, nodes_per_router: int,
                 routing: str = "xy"):
        super().__init__(length, 1, nodes_per_router, routing)
