"""Concentrated mesh: fewer routers, fatter racks, same node count.

A cmesh with concentration ``c`` collapses every ``c x c`` block of mesh
racks onto a single router, so a ``W x H x P`` configuration becomes a
``(W/c) x (H/c)`` router grid with ``P * c^2`` nodes per router — the
node count ``W*H*P`` is invariant, which keeps every traffic pattern and
injection-rate normalisation comparable across the topology axis.
Routing is plain dimension-order on the smaller grid (deadlock-free on a
single VC class, exactly as on the mesh), so the whole class is the mesh
with a re-derived grid; only the constructor differs.

The trade the design space cares about: concentration divides the number
of power-managed inter-router fibers by ~c^2 while multiplying the load
(and thus the utilisation the policy sees) on each, moving the
power/latency knee.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.network.topologies.mesh import MeshTopology


class CMeshTopology(MeshTopology):
    """Mesh over a concentrated router grid."""

    name = "cmesh"

    def __init__(self, mesh_width: int, mesh_height: int,
                 nodes_per_cluster: int, concentration: int = 2,
                 routing: str = "xy"):
        if concentration < 1:
            raise ConfigError(
                f"cmesh concentration must be >= 1, got {concentration!r}"
            )
        if mesh_width % concentration or mesh_height % concentration:
            raise ConfigError(
                f"cmesh concentration {concentration} must divide the mesh "
                f"dimensions; got {mesh_width}x{mesh_height}"
            )
        super().__init__(
            mesh_width // concentration,
            mesh_height // concentration,
            nodes_per_cluster * concentration * concentration,
            routing,
        )
        self.concentration = concentration
