"""The Topology contract: geometry, routing tables and deadlock policy.

A :class:`Topology` is pure geometry — it owns the router coordinate
system, the neighbour/port map, the deadlock-free routing relation and
the analytic hop-count model for one network shape.  It builds *no*
simulation state: :class:`~repro.network.topology.NetworkFabric` asks it
which links to wire, :meth:`~repro.network.router.Router.build_route_table`
asks it to resolve destinations into output ports, and the metrics layer
asks it for expected hop counts.  Keeping the contract stateless means a
topology object is cheap to construct anywhere (standalone unit-test
routers included) and trivially picklable for process-parallel sweeps.

Port-numbering contract (shared with :mod:`repro.network.router` and
:mod:`repro.network.routing`): a router with ``L`` local ports numbers
them ``0 .. L-1``, followed by the four grid directions ``L+EAST``,
``L+WEST``, ``L+NORTH``, ``L+SOUTH``.  Every concrete topology is laid
out on a 2-D router grid (``line`` is a 1-high grid; ``torus`` adds wrap
links; ``cmesh`` shrinks the grid and concentrates nodes), so four mesh
ports always suffice.  ``y`` grows southward: SOUTH is ``+y``.

Deadlock avoidance is expressed through *virtual-channel classes*: a
topology declares :attr:`Topology.num_vc_classes` and assigns every
(router, destination) pair a class via :meth:`Topology.vc_class`.  The
router splits its VCs into that many equal bands and restricts VC
allocation to the band of the head flit's class, which is how the torus
dateline scheme cuts the ring cycles (see
:class:`~repro.network.topologies.torus.TorusTopology`).  Topologies
whose routing relation is already cycle-free on a single class (mesh,
line, cmesh) declare one class and the router's allocation path is
untouched.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.network.links import MESH
from repro.network.routing import (
    DIRECTION_NAMES,
    EAST,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    _PERPENDICULAR,
)


class Topology:
    """Geometry + routing contract for one network shape.

    Concrete subclasses define :meth:`neighbor`, :meth:`route_direction`
    and :meth:`min_hops`; everything else has grid-generic defaults.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Virtual-channel classes the deadlock-avoidance scheme needs.  The
    #: router divides ``num_vcs`` into this many equal allocation bands.
    num_vc_classes = 1

    def __init__(self, grid_width: int, grid_height: int,
                 nodes_per_router: int):
        if grid_width < 1 or grid_height < 1:
            raise ConfigError(
                f"router grid must be at least 1x1, got "
                f"{grid_width}x{grid_height}"
            )
        if nodes_per_router < 1:
            raise ConfigError(
                f"nodes_per_router must be >= 1, got {nodes_per_router!r}"
            )
        self.grid_width = grid_width
        self.grid_height = grid_height
        self.nodes_per_router = nodes_per_router
        self.num_routers = grid_width * grid_height
        self.num_nodes = self.num_routers * nodes_per_router
        #: Router id -> (x, y), precomputed once (row-major, y southward).
        coords = []
        for y in range(grid_height):
            for x in range(grid_width):
                coords.append((x, y))
        self._coords: tuple[tuple[int, int], ...] = tuple(coords)

    # -- geometry --------------------------------------------------------------

    @property
    def grid_shape(self) -> tuple[int, int]:
        """(width, height) of the router grid, for renderers."""
        return (self.grid_width, self.grid_height)

    def router_coords(self, router_id: int) -> tuple[int, int]:
        """Grid coordinates of a router (row-major ids)."""
        return self._coords[router_id]

    def router_at(self, x: int, y: int) -> int:
        """Router id at grid position (x, y)."""
        if not (0 <= x < self.grid_width and 0 <= y < self.grid_height):
            raise ConfigError(
                f"({x}, {y}) outside the {self.grid_width}x"
                f"{self.grid_height} router grid"
            )
        return y * self.grid_width + x

    def neighbor(self, router_id: int, direction: int) -> int | None:
        """Neighbouring router over ``direction``, or None (no link)."""
        raise NotImplementedError

    def mesh_link_count(self) -> int:
        """Unidirectional router-to-router links this topology wires."""
        count = 0
        for router_id in range(self.num_routers):
            for direction in (EAST, WEST, NORTH, SOUTH):
                if self.neighbor(router_id, direction) is not None:
                    count += 1
        return count

    # -- routing ---------------------------------------------------------------

    def route_direction(self, router_id: int, dst_router: int) -> int:
        """Direction constant toward ``dst_router``, or -1 when arrived.

        Must be deterministic and minimal; together with
        :meth:`vc_class` it must be cycle-free on the channel-dependence
        graph (property-tested per topology).
        """
        raise NotImplementedError

    def vc_class(self, router_id: int, dst_router: int) -> int:
        """VC class a head flit for ``dst_router`` allocates from here."""
        return 0

    def detour_vc_class(self, router_id: int, dst_router: int,
                        direction: int) -> int:
        """VC class when a fault detour takes ``direction`` instead.

        :meth:`vc_class` assumes the flit follows :meth:`route_direction`;
        when fault-aware routing picks a *different* output the class must
        be re-derived for the direction actually taken, or a torus detour
        can cross a dateline in the wrong band and close a credit cycle.
        Single-class topologies are direction-independent, so the default
        just delegates.
        """
        return self.vc_class(router_id, dst_router)

    def _productive_directions(self, router_id: int,
                               dst_router: int) -> list[int]:
        """Directions that reduce the remaining distance (X before Y)."""
        raise NotImplementedError

    def fallback_directions(self, router_id: int,
                            dst_router: int) -> tuple[int, ...]:
        """Detour preference order when the routed link is dead.

        Reproduces :func:`repro.network.routing.fault_aware_route`'s
        fixed order — preferred direction, other productive directions,
        perpendiculars of the preferred, its opposite last — with the
        aliveness checks left to the router, which walks this tuple and
        takes the first attached, unfailed link.
        """
        preferred = self.route_direction(router_id, dst_router)
        productive = self._productive_directions(router_id, dst_router)
        order = []
        if preferred >= 0:
            order.append(preferred)
        for direction in productive:
            if direction != preferred:
                order.append(direction)
        if preferred >= 0:
            fallbacks = _PERPENDICULAR[preferred] + (OPPOSITE[preferred],)
        else:  # pragma: no cover - defensive: routing said "arrived"
            fallbacks = (EAST, WEST, NORTH, SOUTH)
        for direction in fallbacks:
            if direction not in productive:
                order.append(direction)
        return tuple(order)

    # -- analytics -------------------------------------------------------------

    def min_hops(self, router_id: int, dst_router: int) -> int:
        """Minimal router-to-router hop count."""
        raise NotImplementedError

    def mean_min_hops(self) -> float:
        """Mean minimal hop count over uniform (src, dst) router pairs.

        Grid-generic O(routers^2) average; subclasses with a closed form
        override (the mesh must stay bit-identical to the legacy
        Manhattan formula).
        """
        n = self.num_routers
        total = 0
        for src in range(n):
            for dst in range(n):
                total += self.min_hops(src, dst)
        return total / float(n * n)

    # -- power policy ----------------------------------------------------------

    def link_off_allowed(self, kind: str) -> bool:
        """Whether the LINK_OFF sleep rung may be armed on ``kind`` links.

        Grid topologies without path redundancy keep their router-to-router
        fibers awake (a sleeping mesh link stalls every worm routed over it
        for up to a wake penalty); edge links always only serve one node
        and may sleep.  The torus overrides this — its wrap paths make the
        whole fabric a candidate.
        """
        return kind != MESH

    # -- description -----------------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable shape summary."""
        return (
            f"{self.name} {self.grid_width}x{self.grid_height} router grid, "
            f"{self.nodes_per_router} nodes/router"
        )


def direction_name(direction: int) -> str:
    """Human-readable name of a direction constant."""
    return DIRECTION_NAMES[direction]
