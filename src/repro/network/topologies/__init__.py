"""Topology registry: name -> :class:`~repro.network.topologies.base.Topology`.

:func:`get_topology` is the single place a
:class:`~repro.config.NetworkConfig` is interpreted into geometry; the
fabric builder, the metrics layer and config validation all go through
it, so adding a topology is: write the class, add a branch here, document
it in ``docs/topologies.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.network.topologies.base import Topology
from repro.network.topologies.cmesh import CMeshTopology
from repro.network.topologies.mesh import LineTopology, MeshTopology
from repro.network.topologies.torus import TorusTopology

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.config import NetworkConfig

#: Names accepted by ``NetworkConfig.topology`` / ``--topology``.
KNOWN_TOPOLOGIES = ("cmesh", "line", "mesh", "torus")


def get_topology(config: "NetworkConfig") -> Topology:
    """Build the topology a :class:`~repro.config.NetworkConfig` names.

    Raises :class:`~repro.errors.ConfigError` for unknown names (listing
    the known ones) and for shape parameters the named topology cannot
    host (torus without enough VCs, concentration not dividing the grid).
    """
    name = config.topology
    if name == "mesh":
        return MeshTopology(config.mesh_width, config.mesh_height,
                            config.nodes_per_cluster, config.routing)
    if name == "torus":
        if config.num_vcs < 2:
            raise ConfigError(
                f"torus dateline deadlock avoidance needs num_vcs >= 2 "
                f"(two VC classes); got num_vcs={config.num_vcs}"
            )
        return TorusTopology(config.mesh_width, config.mesh_height,
                             config.nodes_per_cluster, config.routing)
    if name == "cmesh":
        return CMeshTopology(config.mesh_width, config.mesh_height,
                             config.nodes_per_cluster, config.concentration,
                             config.routing)
    if name == "line":
        return LineTopology(config.mesh_width * config.mesh_height,
                            config.nodes_per_cluster, config.routing)
    raise ConfigError(
        f"unknown topology {name!r}; known: {', '.join(KNOWN_TOPOLOGIES)}"
    )


__all__ = [
    "CMeshTopology",
    "KNOWN_TOPOLOGIES",
    "LineTopology",
    "MeshTopology",
    "Topology",
    "TorusTopology",
    "get_topology",
]
