"""Topology registry: name -> :class:`~repro.network.topologies.base.Topology`.

:func:`get_topology` is the single place a
:class:`~repro.config.NetworkConfig` is interpreted into geometry; the
fabric builder, the metrics layer and config validation all go through
it, so adding a topology is: write the class, add a branch here, document
it in ``docs/topologies.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.network.topologies.base import Topology
from repro.network.topologies.cmesh import CMeshTopology
from repro.network.topologies.mesh import LineTopology, MeshTopology
from repro.network.topologies.torus import TorusTopology

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.config import NetworkConfig

#: Names accepted by ``NetworkConfig.topology`` / ``--topology``.
KNOWN_TOPOLOGIES = ("cmesh", "line", "mesh", "torus")

#: Per-process memo of built topology instances, keyed by every config
#: field the geometry depends on.  Topologies are stateless by contract
#: (docs/topologies.md) and the derived per-router route tables are
#: cached *on* them copy-on-write (see ``Router.build_route_table``), so
#: sharing one instance across fabrics is safe and makes warm sweep
#: workers skip geometry construction entirely.  Bounded: distinct
#: geometries per process are few; evict FIFO past the cap regardless.
_TOPOLOGY_MEMO: dict[tuple, Topology] = {}
_TOPOLOGY_MEMO_MAX = 32


def get_topology(config: "NetworkConfig") -> Topology:
    """Build (or reuse) the topology a :class:`~repro.config.NetworkConfig`
    names.

    Raises :class:`~repro.errors.ConfigError` for unknown names (listing
    the known ones) and for shape parameters the named topology cannot
    host (torus without enough VCs, concentration not dividing the grid);
    validity checks run before the memo so invalid configs always raise.
    """
    name = config.topology
    if name == "torus" and config.num_vcs < 2:
        raise ConfigError(
            f"torus dateline deadlock avoidance needs num_vcs >= 2 "
            f"(two VC classes); got num_vcs={config.num_vcs}"
        )
    key = (name, config.mesh_width, config.mesh_height,
           config.nodes_per_cluster, config.concentration, config.routing)
    memo = _TOPOLOGY_MEMO
    cached = memo.get(key)
    if cached is not None:
        return cached
    if name == "mesh":
        topology: Topology = MeshTopology(
            config.mesh_width, config.mesh_height,
            config.nodes_per_cluster, config.routing)
    elif name == "torus":
        topology = TorusTopology(config.mesh_width, config.mesh_height,
                                 config.nodes_per_cluster, config.routing)
    elif name == "cmesh":
        topology = CMeshTopology(config.mesh_width, config.mesh_height,
                                 config.nodes_per_cluster,
                                 config.concentration, config.routing)
    elif name == "line":
        topology = LineTopology(config.mesh_width * config.mesh_height,
                                config.nodes_per_cluster, config.routing)
    else:
        raise ConfigError(
            f"unknown topology {name!r}; known: "
            f"{', '.join(KNOWN_TOPOLOGIES)}"
        )
    if len(memo) >= _TOPOLOGY_MEMO_MAX:
        memo.pop(next(iter(memo)))
    memo[key] = topology
    return topology


__all__ = [
    "CMeshTopology",
    "KNOWN_TOPOLOGIES",
    "LineTopology",
    "MeshTopology",
    "Topology",
    "TorusTopology",
    "get_topology",
]
