"""2-D torus with dimension-order routing and dateline VC classes.

Wrap-around links close each row and column into rings, which halves the
network diameter but reintroduces the channel-dependence cycles that
dimension-order routing eliminated on the mesh: flits circling a ring can
form a credit cycle through the wrap link.  The classic fix is the
*dateline* scheme (Dally & Towles §14.3): virtual channels are split into
two classes, packets travel in class 1 while their remaining journey in
the current dimension still crosses the wrap edge, and drop to class 0
once it no longer does — crossing the dateline is exactly that
transition.  The channel-dependence graph is then acyclic:

* class-0 channels only ever depend on class-0 channels strictly closer
  to the destination *without* using the wrap edge,
* class-1 channels chain monotonically toward the wrap edge and hand over
  to class 0 after it — class transitions only go 1 -> 0,
* dimension order (X rings before Y rings under ``xy``) orders the two
  ring families.

Because routing here is deterministic and minimal, "will the remaining
journey wrap" is a pure function of (current router, destination), so the
class assignment is *table-driven* like the route itself: the router
latches the class at RC time from a per-destination table and restricts
VC allocation to that class's band.  This is why the topology refactor
had to touch the ``num_vcs`` plumbing — a torus needs at least two VCs
per port to host the two bands.

Ties (a destination exactly halfway around an even ring) break toward
the positive direction (east / south), consistently at every hop, so the
chosen direction never flips mid-journey.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.network.routing import EAST, NORTH, SOUTH, WEST
from repro.network.topologies.base import Topology


class TorusTopology(Topology):
    """Wrap-around 2-D grid; two dateline VC classes."""

    name = "torus"
    num_vc_classes = 2

    def __init__(self, grid_width: int, grid_height: int,
                 nodes_per_router: int, routing: str = "xy"):
        super().__init__(grid_width, grid_height, nodes_per_router)
        if routing not in ("xy", "yx"):
            raise ConfigError(
                f"torus deadlock avoidance is defined for dimension-order "
                f"routing only ('xy' or 'yx'); got {routing!r}"
            )
        self.routing = routing
        self._x_first = routing == "xy"

    def neighbor(self, router_id: int, direction: int) -> int | None:
        x, y = self._coords[router_id]
        w, h = self.grid_width, self.grid_height
        if direction == EAST:
            if w == 1:
                return None
            return y * w + (x + 1) % w
        if direction == WEST:
            if w == 1:
                return None
            return y * w + (x - 1) % w
        if h == 1:
            return None
        if direction == SOUTH:
            return ((y + 1) % h) * w + x
        return ((y - 1) % h) * w + x

    def route_direction(self, router_id: int, dst_router: int) -> int:
        if router_id == dst_router:
            return -1
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        if self._x_first:
            if src_x != dst_x:
                return _ring_direction(src_x, dst_x, self.grid_width,
                                       EAST, WEST)
            return _ring_direction(src_y, dst_y, self.grid_height,
                                   SOUTH, NORTH)
        if src_y != dst_y:
            return _ring_direction(src_y, dst_y, self.grid_height,
                                   SOUTH, NORTH)
        return _ring_direction(src_x, dst_x, self.grid_width, EAST, WEST)

    def vc_class(self, router_id: int, dst_router: int) -> int:
        if router_id == dst_router:
            return 0
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        if self._x_first:
            if src_x != dst_x:
                return _ring_class(src_x, dst_x, self.grid_width)
            return _ring_class(src_y, dst_y, self.grid_height)
        if src_y != dst_y:
            return _ring_class(src_y, dst_y, self.grid_height)
        return _ring_class(src_x, dst_x, self.grid_width)

    def detour_vc_class(self, router_id: int, dst_router: int,
                        direction: int) -> int:
        # A detour hop crosses its ring's dateline iff continuing in the
        # *chosen* direction toward the destination passes the wrap edge,
        # or the hop itself is the wrap link (the coordinate is already
        # correct and the detour steps off the ring's far edge).  This
        # generalises :func:`_ring_class`, which only covers the minimal
        # direction, and agrees with it whenever the chosen direction is
        # the minimal one.
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        if direction == EAST:
            return 1 if (dst_x < src_x or src_x == self.grid_width - 1) else 0
        if direction == WEST:
            return 1 if (dst_x > src_x or src_x == 0) else 0
        if direction == SOUTH:
            return 1 if (dst_y < src_y or src_y == self.grid_height - 1) else 0
        return 1 if (dst_y > src_y or src_y == 0) else 0

    def _productive_directions(self, router_id: int,
                               dst_router: int) -> list[int]:
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        productive = []
        if src_x != dst_x:
            productive.append(
                _ring_direction(src_x, dst_x, self.grid_width, EAST, WEST)
            )
        if src_y != dst_y:
            productive.append(
                _ring_direction(src_y, dst_y, self.grid_height, SOUTH, NORTH)
            )
        return productive

    def min_hops(self, router_id: int, dst_router: int) -> int:
        src_x, src_y = self._coords[router_id]
        dst_x, dst_y = self._coords[dst_router]
        return (_ring_distance(src_x, dst_x, self.grid_width)
                + _ring_distance(src_y, dst_y, self.grid_height))

    def mean_min_hops(self) -> float:
        # Mean ring distance per dimension over uniform ordered pairs
        # (self-pairs included, matching the mesh convention): by ring
        # symmetry this is (1/W) * sum_k min(k, W-k).
        return (_mean_ring_distance(self.grid_width)
                + _mean_ring_distance(self.grid_height))

    def link_off_allowed(self, kind: str) -> bool:
        # The torus is the substrate the LINK_OFF rung was built for:
        # every router keeps four live directions, so an asleep fiber
        # only costs its worms the wake penalty, never connectivity.
        return True


def _ring_direction(src: int, dst: int, size: int,
                    forward_dir: int, backward_dir: int) -> int:
    """Minimal direction around one ring; ties break toward forward."""
    forward = (dst - src) % size
    if forward <= size - forward:
        return forward_dir
    return backward_dir


def _ring_class(src: int, dst: int, size: int) -> int:
    """Dateline VC class: 1 while the remaining ring journey wraps."""
    forward = (dst - src) % size
    if forward <= size - forward:
        # Travelling forward (increasing coordinate): wraps iff the
        # destination is numerically behind us.
        return 1 if dst < src else 0
    # Travelling backward: wraps iff the destination is ahead.
    return 1 if dst > src else 0


def _ring_distance(src: int, dst: int, size: int) -> int:
    forward = (dst - src) % size
    return min(forward, size - forward)


def _mean_ring_distance(size: int) -> float:
    total = 0
    for k in range(size):
        total += min(k, size - k)
    return total / float(size)
