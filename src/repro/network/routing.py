"""Routing algorithms for the clustered 2-D mesh.

The paper's inter-rack network is a general two-dimensional mesh; we use
dimension-order (XY) routing as the deadlock-free default, with YX and a
simple minimal-adaptive variant as design-space extensions.

Port-numbering convention (shared with :mod:`repro.network.router`): a
router with ``L`` local ports numbers them ``0 .. L-1`` (injection on the
input side, ejection on the output side), followed by the four mesh
directions ``L+EAST``, ``L+WEST``, ``L+NORTH``, ``L+SOUTH``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError

EAST = 0
WEST = 1
NORTH = 2
SOUTH = 3

#: Human-readable direction names, indexed by direction constant.
DIRECTION_NAMES = ("east", "west", "north", "south")

#: Opposite of each direction (EAST<->WEST, NORTH<->SOUTH).
OPPOSITE = (WEST, EAST, SOUTH, NORTH)

#: Signature of a routing function: (src_x, src_y, dst_x, dst_y) -> direction
#: constant, or -1 when the packet has arrived at its destination router.
RoutingFunction = Callable[[int, int, int, int], int]


def xy_route(src_x: int, src_y: int, dst_x: int, dst_y: int) -> int:
    """Dimension-order routing: exhaust X hops before any Y hop."""
    if dst_x > src_x:
        return EAST
    if dst_x < src_x:
        return WEST
    if dst_y > src_y:
        return SOUTH
    if dst_y < src_y:
        return NORTH
    return -1


def yx_route(src_x: int, src_y: int, dst_x: int, dst_y: int) -> int:
    """Dimension-order routing, Y first (also deadlock-free on a mesh)."""
    if dst_y > src_y:
        return SOUTH
    if dst_y < src_y:
        return NORTH
    if dst_x > src_x:
        return EAST
    if dst_x < src_x:
        return WEST
    return -1


def make_west_first_route() -> RoutingFunction:
    """West-first turn-model routing (partially adaptive, deadlock-free).

    All westward hops are taken first; once heading east the packet may
    take X or Y hops in any order.  We implement the deterministic member
    of the family: prefer the X dimension when both are productive.
    """

    def west_first(src_x: int, src_y: int, dst_x: int, dst_y: int) -> int:
        if dst_x < src_x:
            return WEST
        if dst_x > src_x:
            return EAST
        if dst_y > src_y:
            return SOUTH
        if dst_y < src_y:
            return NORTH
        return -1

    return west_first


#: Perpendicular directions for each direction constant, in the fixed
#: order fault-aware misrouting tries them.
_PERPENDICULAR = {
    EAST: (NORTH, SOUTH),
    WEST: (NORTH, SOUTH),
    NORTH: (EAST, WEST),
    SOUTH: (EAST, WEST),
}


def fault_aware_route(route_fn: RoutingFunction, src_x: int, src_y: int,
                      dst_x: int, dst_y: int,
                      alive: Callable[[int], bool]) -> int:
    """Route around dead links with local knowledge only.

    Falls back from the default routing function in a fixed preference
    order, so detours are deterministic:

    1. the direction ``route_fn`` picked, if its link is alive;
    2. the other *productive* direction (one that still reduces the
       Manhattan distance), if any and alive;
    3. a perpendicular misroute (detour around the dead row/column) —
       perpendiculars of the preferred direction first, its opposite as
       the very last resort (turning straight back tends to bounce).

    ``alive(direction)`` must return False for both failed links and mesh
    edges (no output attached).  Returns -1 when every direction is dead —
    the router is disconnected.

    This is *not* provably deadlock- or livelock-free (the turn
    restrictions of dimension-order routing no longer hold once packets
    misroute); it is a graceful-degradation heuristic for sparse failures,
    backstopped by the simulator's stall watchdog.
    """
    preferred = route_fn(src_x, src_y, dst_x, dst_y)
    if preferred >= 0 and alive(preferred):
        return preferred
    productive = []
    if dst_x > src_x:
        productive.append(EAST)
    elif dst_x < src_x:
        productive.append(WEST)
    if dst_y > src_y:
        productive.append(SOUTH)
    elif dst_y < src_y:
        productive.append(NORTH)
    for direction in productive:
        if direction != preferred and alive(direction):
            return direction
    if preferred >= 0:
        fallbacks = _PERPENDICULAR[preferred] + (OPPOSITE[preferred],)
    else:  # pragma: no cover - defensive: route_fn said "arrived"
        fallbacks = (EAST, WEST, NORTH, SOUTH)
    for direction in fallbacks:
        if direction not in productive and alive(direction):
            return direction
    return -1


ROUTING_FUNCTIONS: dict[str, RoutingFunction] = {
    "xy": xy_route,
    "yx": yx_route,
    "west_first": make_west_first_route(),
}


def get_routing_function(name: str) -> RoutingFunction:
    """Look up a routing function by name, raising on unknown names."""
    try:
        return ROUTING_FUNCTIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown routing algorithm {name!r}; "
            f"known: {sorted(ROUTING_FUNCTIONS)}"
        ) from None


def hop_count(src_x: int, src_y: int, dst_x: int, dst_y: int) -> int:
    """Minimal mesh hop count between two routers (Manhattan distance)."""
    return abs(dst_x - src_x) + abs(dst_y - src_y)
