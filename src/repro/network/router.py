"""The 5-stage pipelined virtual-channel wormhole router (paper Fig. 4(b)).

Each router has ``L`` local ports (injection inputs / ejection outputs to
the processing nodes of its rack) plus four mesh ports.  The pipeline is
the classic BW -> RC -> VA -> SA -> ST/LT of the PopNet simulator the paper
builds on: a head flit that reaches the front of its virtual-channel (VC)
buffer spends :attr:`Router.head_delay` cycles in route computation and
allocation before competing for the switch; body flits inherit the route
and VC and flow one per cycle behind it.

Virtual channels: every input port's buffer space is divided among
``num_vcs`` VCs.  A packet claims one downstream VC per hop (VC
allocation) and holds it until its tail leaves, but the *link* serialiser
is shared flit by flit — two packets heading over the same fiber interleave
at flit granularity instead of blocking each other for a whole 48-flit
packet.  Credits are per-VC.

The router core runs at a fixed frequency while links run at their own
(variable) rates — a flit only wins switch allocation when its output link
can start serialising (``link.can_accept``) and a downstream credit exists,
so slow or disabled links exert backpressure exactly as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError, SimulationError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.flit import Flit
from repro.network.links import Link

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.network.topologies.base import Topology

#: Shared empty result for step calls that forward nothing (the common
#: case) — callers treat the return value as read-only.
_NO_FORWARDS: list[tuple[int, "Flit"]] = []

#: Bitmask -> ascending set-bit indices, e.g. ``_BITS[0b10010] == (1, 4)``.
#: The allocation scan iterates these precomputed tuples instead of
#: peeling bits arithmetically (``mask & -mask`` / ``bit_length``), which
#: costs four interpreter operations per member per cycle.  Grown on
#: demand by :func:`_ensure_bits` to cover ``1 << num_ports`` entries.
_BITS: list[tuple[int, ...]] = [()]

#: Masks at or above this (more than 16 set-bit positions) have no
#: precomputed expansion — the table would be exponential in port count,
#: and a concentrated cmesh rack has ``P*c^2 + 4`` ports.  Such masks
#: take :func:`_wide_bits`; every mask on narrower routers (every mesh,
#: torus and line configuration) still indexes :data:`_BITS` directly.
_BITS_LIMIT = 1 << 16


def _ensure_bits(limit: int) -> None:
    """Extend :data:`_BITS` to cover every mask below ``limit``."""
    while len(_BITS) < limit:
        n = len(_BITS)
        low = ((0,) if n & 1 else ())
        _BITS.append(low + tuple(b + 1 for b in _BITS[n >> 1]))


def _wide_bits(mask: int) -> list[int]:
    """Ascending set-bit indices of a mask too wide for :data:`_BITS`.

    16-bit chunked decode through the precomputed table, preserving the
    canonical ascending order the allocation scan's tie-breaks rely on.
    """
    out = []
    base = 0
    bits = _BITS
    while mask:
        word = mask & 0xFFFF
        if word:
            for bit in bits[word]:
                out.append(base + bit)
        mask >>= 16
        base += 16
    return out


class VirtualChannel:
    """Per-VC state at an input port: buffer + wormhole route/VC latches."""

    __slots__ = ("buffer", "route_out", "eligible_at", "out_vc", "vc_class")

    def __init__(self, buffer: InputBuffer):
        self.buffer = buffer
        self.route_out = -1
        self.eligible_at = 0.0
        self.out_vc = -1
        #: VC class latched at RC time (deadlock-avoidance band the next
        #: hop's VC must come from); always 0 on single-class topologies.
        self.vc_class = 0


class InputPort:
    """An input port: ``num_vcs`` virtual channels plus upstream credits.

    The port keeps two incrementally maintained work-list fields so the
    switch-allocation loop touches only VCs that can actually move:
    ``nonempty`` is a bitmask with bit ``v`` set while VC ``v`` buffers at
    least one flit, and ``occupancy`` is the total buffered flit count
    (formerly an O(num_vcs) sum recomputed per query).  Both are updated
    only by :meth:`Router.receive_flit` and the forwarding loop of
    :meth:`Router.step` — the only two places flits enter or leave a VC.
    """

    __slots__ = ("vcs", "upstream_credits", "nonempty", "occupancy")

    def __init__(self, num_vcs: int, vc_depth: int):
        self.vcs = [VirtualChannel(InputBuffer(vc_depth))
                    for _ in range(num_vcs)]
        #: Per-VC credit counters held by whoever feeds this port (the
        #: upstream router's output port, or the node for injection ports).
        self.upstream_credits: list[CreditCounter] | None = None
        #: Bitmask of VCs with buffered flits (bit ``v`` <-> ``vcs[v]``).
        self.nonempty = 0
        #: Total flits buffered across all VCs.
        self.occupancy = 0

    def buffers(self) -> tuple[InputBuffer, ...]:
        return tuple(vc.buffer for vc in self.vcs)


class OutputPort:
    """An output port: the link, downstream VC ownership and credits."""

    __slots__ = ("link", "credits", "vc_owner", "arbiter")

    def __init__(self, link: Link, credits: list[CreditCounter] | None,
                 num_vcs: int, arbiter: RoundRobinArbiter):
        self.link = link
        #: Per-VC credits for the downstream input port; ``None`` for
        #: ejection ports, whose node sinks consume flits unconditionally.
        self.credits = credits
        #: Which (input port, input VC) owns each downstream VC, or None.
        self.vc_owner: list[tuple[int, int] | None] = [None] * num_vcs
        self.arbiter = arbiter

    def free_vc(self) -> int:
        """Lowest-index unowned downstream VC, or -1 if none."""
        for index, owner in enumerate(self.vc_owner):
            if owner is None:
                return index
        return -1

    def free_vc_in(self, lo: int, hi: int) -> int:
        """Lowest unowned downstream VC in ``[lo, hi)``, or -1 if none.

        The class-restricted variant of :meth:`free_vc`, used by
        topologies whose deadlock avoidance partitions VCs into bands
        (torus datelines).
        """
        vc_owner = self.vc_owner
        for index in range(lo, hi):
            if vc_owner[index] is None:
                return index
        return -1


class Router:
    """One communication router of the clustered system."""

    __slots__ = (
        "router_id", "x", "y", "num_local", "num_ports",
        "num_vcs", "inputs", "outputs", "head_delay", "topology",
        "_active_mask", "_requests", "_route_table",
        "_vc_classes", "_class_bounds", "_rc_class",
        "registry", "fault_stats", "batch", "_slot_base",
    )

    def __init__(self, router_id: int, num_local: int, buffer_depth: int,
                 num_vcs: int, head_delay: int, topology: "Topology"):
        if num_local < 1:
            raise ConfigError(f"num_local must be >= 1, got {num_local!r}")
        if num_vcs < 1:
            raise ConfigError(f"num_vcs must be >= 1, got {num_vcs!r}")
        if buffer_depth < num_vcs:
            raise ConfigError(
                f"buffer_depth {buffer_depth} cannot hold {num_vcs} VCs"
            )
        self.router_id = router_id
        #: The topology owns all geometry: coordinates, neighbour maps,
        #: the routing relation and the fault-fallback order.  The router
        #: only consumes the tables it derives from it.
        self.topology = topology
        self.x, self.y = topology.router_coords(router_id)
        self.num_local = num_local
        self.num_ports = num_local + 4
        self.num_vcs = num_vcs
        vc_depth = buffer_depth // num_vcs
        self.inputs = [InputPort(num_vcs, vc_depth)
                       for _ in range(self.num_ports)]
        # Output ports are attached by the fabric builder; missing mesh
        # directions (edge routers) stay None and must never be routed to.
        self.outputs: list[OutputPort | None] = [None] * self.num_ports
        self.head_delay = head_delay
        if num_vcs > 16:
            # The per-port VC work-list mask must stay within the
            # precomputed _BITS table (the port mask may chunk through
            # _wide_bits, the inner VC scan does not).
            raise ConfigError(f"num_vcs must be <= 16, got {num_vcs!r}")
        _ensure_bits(min(1 << max(self.num_ports, num_vcs), _BITS_LIMIT))
        #: Bitmask of input ports with buffered flits (the router-local
        #: work-list; invariant: bit ``i`` set <-> ``inputs[i].nonempty``).
        self._active_mask = 0
        #: Scratch request map reused across :meth:`step` calls (allocating
        #: a fresh dict per router per cycle showed up in profiles).
        self._requests: dict[int, list[tuple[int, int]]] = {}
        #: Per-destination-router output-port lookup, resolved from the
        #: topology (:meth:`build_route_table`); ``None`` for standalone
        #: routers (unit tests), ``-1`` entries fall back to
        #: :meth:`_route_slow`.
        self._route_table: list[int] | None = None
        #: Per-destination VC-class lookup (same indexing); ``None`` on
        #: single-class topologies, keeping their allocation path intact.
        self._vc_classes: list[int] | None = None
        #: Per-class (lo, hi) VC allocation bands, set with ``_vc_classes``.
        self._class_bounds: tuple[tuple[int, int], ...] = ((0, num_vcs),)
        #: Class of the route most recently computed by :meth:`_route`
        #: (only maintained while ``_vc_classes`` is not None).
        self._rc_class = 0
        #: Optional active-router registry maintained by the simulator: a
        #: router registers itself while any input port holds flits, so the
        #: routing phase only steps routers with work (see
        #: :class:`repro.engine.active.ActiveSet`).
        self.registry = None
        #: Optional shared reliability counter object (assigned by the
        #: reliability manager); ``None`` keeps routing on the fast path.
        self.fault_stats = None
        #: Optional :class:`repro.network.batch.BatchRouteBackend` this
        #: router mirrors its per-slot gating state into (``None`` keeps
        #: every scalar path free of mirror writes).  While attached, the
        #: route phase must enter through the backend — calling
        #: :meth:`step` directly is still correct for the router itself
        #: but would leave the backend's mirrors stale.
        self.batch = None
        #: First global slot index of this router's (port, VC) slots in
        #: the batch backend's struct-of-arrays state.
        self._slot_base = 0

    def attach_output(self, port: int, output: OutputPort) -> None:
        """Wire an output port (done once by the topology builder)."""
        if self.outputs[port] is not None:
            raise ConfigError(
                f"router {self.router_id} output {port} already attached"
            )
        self.outputs[port] = output

    def receive_flit(self, port: int, flit: Flit, now: float) -> None:
        """Accept a flit delivered by the input link of ``port``."""
        if not 0 <= flit.vc < self.num_vcs:
            raise SimulationError(
                f"flit arrived on router {self.router_id} port {port} with "
                f"VC {flit.vc} outside [0, {self.num_vcs})"
            )
        if not self._active_mask and self.registry is not None:
            self.registry.add(self)
        ip = self.inputs[port]
        buf = ip.vcs[flit.vc].buffer
        fifo = buf._fifo
        if len(fifo) >= buf.capacity:
            buf.push(flit, now)  # raises the credit-violation diagnostic
        buf._occ_integral += len(fifo) * (now - buf._last_event)
        buf._last_event = now
        fifo.append(flit)
        ip.nonempty |= 1 << flit.vc
        ip.occupancy += 1
        self._active_mask |= 1 << port
        batch = self.batch
        if batch is not None:
            batch.occ[self._slot_base + port * self.num_vcs + flit.vc] = 1
            batch.occupied += 1
            batch.quiet_until = 0.0

    def build_route_table(self) -> None:
        """Resolve the topology's routing relation into lookup tables.

        Called once by the fabric builder **after** all links are wired;
        the RC stage then indexes ``_route_table[dst_router]`` instead of
        re-running the routing relation per head flit.  The entry for this
        router itself is ``-1`` (local delivery resolves before the
        lookup), as is any destination whose route the reliability manager
        has invalidated (:meth:`invalidate_routes_via`).

        Raises :class:`~repro.errors.ConfigError` if a routed direction
        has no output attached — building the table before wiring would
        otherwise produce entries pointing at dead ports that only
        surface as cryptic stall diagnostics at forward time.

        Multi-class topologies (torus datelines) additionally get a
        per-destination VC-class table and the per-class allocation
        bands the switch-allocation stage restricts VC grants to.

        The resolved tables are memoised on the (shared, stateless)
        topology instance, keyed by everything they depend on, because
        resolving the routing relation for every destination is the
        single most expensive part of fabric construction.  The cached
        tuples are pristine masters: each build hands out fresh list
        copies, so :meth:`invalidate_routes_via` (which mutates the
        router's table in place when a link fails) never corrupts the
        cache — copy-on-write by construction.
        """
        topology = self.topology
        cache = getattr(topology, "_route_table_cache", None)
        if cache is None:
            cache = {}
            topology._route_table_cache = cache
        cache_key = (self.router_id, self.num_local, self.num_vcs)
        cached = cache.get(cache_key)
        if cached is None:
            table = []
            for dst_router in range(topology.num_routers):
                if dst_router == self.router_id:
                    table.append(-1)
                    continue
                direction = topology.route_direction(self.router_id,
                                                     dst_router)
                table.append(-1 if direction < 0
                             else self.num_local + direction)
            classes: tuple[int, ...] | None = None
            bounds: tuple[tuple[int, int], ...] = ((0, self.num_vcs),)
            num_classes = topology.num_vc_classes
            if num_classes > 1:
                if self.num_vcs < num_classes:
                    raise ConfigError(
                        f"topology {topology.name!r} needs {num_classes} VC "
                        f"classes but the router has only {self.num_vcs} VCs"
                    )
                classes = tuple(
                    topology.vc_class(self.router_id, dst_router)
                    for dst_router in range(topology.num_routers)
                )
                num_vcs = self.num_vcs
                bounds = tuple(
                    (cls * num_vcs // num_classes,
                     (cls + 1) * num_vcs // num_classes)
                    for cls in range(num_classes)
                )
            cached = (tuple(table), classes, bounds)
            cache[cache_key] = cached
        master_table, master_classes, master_bounds = cached
        # Wiring is validated on every build (cached or not): a table
        # entry pointing at a dead port would only surface as a cryptic
        # stall diagnostic at forward time.
        for dst_router, out in enumerate(master_table):
            if out >= 0 and self.outputs[out] is None:
                raise ConfigError(
                    f"router {self.router_id} routes toward router "
                    f"{dst_router} over output port {out}, which has no "
                    f"link attached — build_route_table must be called "
                    f"after the fabric wires all links"
                )
        self._route_table = list(master_table)
        if master_classes is not None:
            self._vc_classes = list(master_classes)
            self._class_bounds = master_bounds

    def invalidate_routes_via(self, port: int) -> None:
        """Drop cached routes through ``port`` (a link just failed).

        Invalidated destinations fall back to :meth:`_route_slow`, which
        re-runs the routing function and detours around the dead link —
        preserving the per-head-flit reroute accounting.
        """
        table = self._route_table
        if table is None:
            return
        for dst, out in enumerate(table):
            if out == port:
                table[dst] = -1

    def reset(self) -> None:
        """Restore construction-time dynamic state for a warm rerun.

        Wiring (attached outputs, links, credit-counter identity) is
        structural and survives; everything a run mutates — VC buffers
        and latches, credits, arbiters, work-list masks, fault hooks and
        any routes :meth:`invalidate_routes_via` dropped — is restored
        to its freshly-constructed value.
        """
        for port in self.inputs:
            for vc in port.vcs:
                vc.buffer.reset()
                vc.route_out = -1
                vc.eligible_at = 0.0
                vc.out_vc = -1
                vc.vc_class = 0
            if port.upstream_credits is not None:
                for credit in port.upstream_credits:
                    credit.reset()
            port.nonempty = 0
            port.occupancy = 0
        for output in self.outputs:
            if output is None:
                continue
            if output.credits is not None:
                for credit in output.credits:
                    credit.reset()
            vc_owner = output.vc_owner
            for index in range(len(vc_owner)):
                vc_owner[index] = None
            output.arbiter.reset()
        self._active_mask = 0
        self._requests.clear()
        self._rc_class = 0
        self.registry = None
        self.fault_stats = None
        self.batch = None
        self._slot_base = 0
        if self._route_table is not None:
            # Cache hit by construction (the first build populated it);
            # this restores entries a failed link invalidated.
            self.build_route_table()

    def _route(self, flit: Flit) -> int:
        """Compute the output port for a head flit (the RC stage)."""
        dst_router, dst_local = divmod(flit.packet.dst, self.num_local)
        if dst_router == self.router_id:
            if self._vc_classes is not None:
                self._rc_class = 0
            return dst_local
        vc_classes = self._vc_classes
        if vc_classes is not None:
            self._rc_class = vc_classes[dst_router]
        table = self._route_table
        if table is not None:
            out = table[dst_router]
            if out >= 0:
                # Defensive failed-link check: invalidation should have
                # cleared this entry, but a stale hit must never route a
                # new worm onto a dead fiber.
                op = self.outputs[out]
                if op is None or not op.link.failed:
                    return out
        return self._route_slow(dst_router)

    def _route_slow(self, dst_router: int) -> int:
        """Topology fallback for untabulated or invalidated routes."""
        direction = self.topology.route_direction(self.router_id, dst_router)
        if direction < 0:
            raise SimulationError(
                f"routing returned 'arrived' for a remote destination "
                f"router {dst_router!r} at router {self.router_id}"
            )
        out = self.num_local + direction
        op = self.outputs[out]
        if op is not None and op.link.failed:
            return self._route_around(dst_router)
        return out

    def _route_around(self, dst_router: int) -> int:
        """Fault-aware fallback when the default route's link is dead.

        Walks the topology's fixed detour preference order and takes the
        first attached, unfailed direction — the same deterministic order
        :func:`repro.network.routing.fault_aware_route` defines for the
        mesh, generalised per topology.

        On multi-class topologies the deadlock-avoidance class latched by
        :meth:`_route` described the *canonical* direction; a detour can
        leave the fabric travelling a different way (e.g. a torus wrap
        edge the minimal route never crossed), so the class is re-derived
        from the direction actually chosen
        (:meth:`~repro.network.topologies.base.Topology.detour_vc_class`).
        """
        outputs = self.outputs
        num_local = self.num_local
        for direction in self.topology.fallback_directions(
                self.router_id, dst_router):
            op = outputs[num_local + direction]
            if op is not None and not op.link.failed:
                if self.fault_stats is not None:
                    self.fault_stats.reroutes += 1
                if self._vc_classes is not None:
                    self._rc_class = self.topology.detour_vc_class(
                        self.router_id, dst_router, direction)
                return num_local + direction
        raise SimulationError(
            f"router {self.router_id} is disconnected: every direction "
            f"toward router {dst_router} is failed or absent"
        )

    def step(self, now: float) -> list[tuple[int, Flit]]:
        """One allocation + traversal cycle.

        Returns the (output port, flit) pairs forwarded this cycle — used
        by tests; the flits are already on their links.

        The allocation scan walks the ``_active_mask``/``nonempty``
        work-list bitmasks in canonical ascending (port, VC) order, so only
        VCs holding flits are touched and every tie-break the arbiters see
        is deterministic.
        """
        active = self._active_mask
        if not active:
            if self.registry is not None:
                self.registry.discard(self)
            return _NO_FORWARDS
        inputs = self.inputs
        outputs = self.outputs
        # Most step calls produce zero or one switch request (measured 0.6
        # per call at saturation), so the first candidate is held in plain
        # locals and the per-output request map is only materialised when a
        # second candidate appears.
        nreq = 0
        out0 = i0 = v0 = -1
        requests = None
        pressured = 0
        bits = _BITS
        vc_classes = self._vc_classes
        for i in bits[active] if active < _BITS_LIMIT else _wide_bits(active):
            port = inputs[i]
            vcs = port.vcs
            for v in bits[port.nonempty]:
                vc = vcs[v]
                out_idx = vc.route_out
                if out_idx < 0:
                    head = vc.buffer.head()
                    if not head.is_head:
                        raise SimulationError(
                            "wormhole invariant broken: body flit at VC head "
                            "with no latched route"
                        )
                    out_idx = vc.route_out = self._route(head)
                    if outputs[out_idx] is None:
                        raise SimulationError(
                            f"routing chose unattached output {out_idx} "
                            f"at router {self.router_id}"
                        )
                    if vc_classes is not None:
                        vc.vc_class = self._rc_class
                    vc.eligible_at = now + self.head_delay
                    if self.batch is not None:
                        self._mirror_route(i, v, out_idx, vc.eligible_at)
                pressured |= 1 << out_idx
                if now < vc.eligible_at:
                    continue
                op = outputs[out_idx]
                if vc.out_vc < 0:
                    # VC allocation: claim a free downstream VC — from the
                    # head's deadlock-avoidance band on multi-class
                    # topologies, from the full range otherwise.
                    if vc_classes is None:
                        grant = op.free_vc()
                    else:
                        lo, hi = self._class_bounds[vc.vc_class]
                        grant = op.free_vc_in(lo, hi)
                    if grant < 0:
                        continue
                    op.vc_owner[grant] = (i, v)
                    vc.out_vc = grant
                    if self.batch is not None:
                        self._mirror_grant(i, v)
                link = op.link
                if now < link.disabled_until or now < link.free_at:
                    continue
                credits = op.credits
                if credits is not None and credits[vc.out_vc].available <= 0:
                    continue
                if nreq == 0:
                    out0, i0, v0 = out_idx, i, v
                    nreq = 1
                    continue
                if requests is None:
                    requests = self._requests
                    requests.clear()
                    requests[out0] = [(i0, v0)]
                reqs = requests.get(out_idx)
                if reqs is None:
                    requests[out_idx] = [(i, v)]
                else:
                    reqs.append((i, v))
        for out_idx in (bits[pressured] if pressured < _BITS_LIMIT
                        else _wide_bits(pressured)):
            outputs[out_idx].link.pressure_accum += 1.0

        if nreq == 0:
            if not self._active_mask and self.registry is not None:
                self.registry.discard(self)
            return _NO_FORWARDS
        if requests is None:
            # Single granted request: one shared switch-traversal body
            # (:meth:`_forward`) serves this common case, the contested
            # loop below and the batch backend — a divergence between an
            # inlined copy and the method cannot happen by construction.
            flit = self._forward(out0, i0, v0, now)
            if not self._active_mask and self.registry is not None:
                self.registry.discard(self)
            return [(out0, flit)]
        forwarded: list[tuple[int, Flit]] = []
        num_vcs = self.num_vcs
        for out_idx, reqs in requests.items():
            if len(reqs) == 1:
                winner_port, winner_vc = reqs[0]
            else:
                encoded = outputs[out_idx].arbiter.grant(
                    # Contested-arbitration branch: >=2 requesters for one
                    # output port, measured at <2% of router steps.
                    [p * num_vcs + v for p, v in reqs]  # repro: noqa[HP004] cold branch, see above
                )
                winner_port, winner_vc = divmod(encoded, num_vcs)
            forwarded.append(
                (out_idx, self._forward(out_idx, winner_port, winner_vc, now))
            )
        requests.clear()
        if not self._active_mask and self.registry is not None:
            self.registry.discard(self)
        return forwarded

    def _mirror_route(self, i: int, v: int, out_idx: int,
                      eligible_at: float) -> None:
        """Write a just-latched route into the batch backend's mirrors."""
        batch = self.batch
        slot = self._slot_base + i * self.num_vcs + v
        batch.routed[slot] = 1
        batch.elig[slot] = eligible_at
        batch.out_link[slot] = self.outputs[out_idx].link.link_id
        batch.klass[slot] = \
            self._rc_class if self._vc_classes is not None else 0

    def _mirror_grant(self, i: int, v: int) -> None:
        """Mirror a downstream-VC claim: mark the slot, debit the band."""
        batch = self.batch
        slot = self._slot_base + i * self.num_vcs + v
        batch.hasoutvc[slot] = 1
        batch.vcfree[batch.out_link[slot], batch.klass[slot]] -= 1

    def _forward(self, out_idx: int, winner_port: int, winner_vc: int,
                 now: float) -> Flit:
        """Switch traversal for one granted (input port, VC) -> output.

        Returns the forwarded flit (already pushed onto the output link).
        """
        op = self.outputs[out_idx]
        port = self.inputs[winner_port]
        vc = port.vcs[winner_vc]
        buf = vc.buffer
        fifo = buf._fifo
        if not fifo:
            buf.pop(now)  # raises with the canonical message
        buf._occ_integral += len(fifo) * (now - buf._last_event)
        buf._last_event = now
        flit = fifo.popleft()
        port.occupancy -= 1
        flit.vc = vc.out_vc
        if op.credits is not None:
            op.credits[vc.out_vc].consume()
        if port.upstream_credits is not None:
            port.upstream_credits[winner_vc].refill()
        link = op.link
        if now < link.disabled_until or now < link.free_at:
            link.push(flit, now)  # unreachable (scan gate); raises
        service_time = link.service_time
        link.free_at = now + service_time
        link.busy_accum += service_time
        link.flits_carried += 1
        in_flight = link._in_flight
        was_empty = not in_flight
        in_flight.append((link.free_at + link.propagation_cycles, flit))
        if was_empty and link.registry is not None:
            link.registry.add(link)
        if flit.is_tail:
            op.vc_owner[vc.out_vc] = None
            vc.route_out = -1
            vc.out_vc = -1
        else:
            vc.eligible_at = now + 1.0
        if buf.is_empty:
            port.nonempty &= ~(1 << winner_vc)
            if not port.nonempty:
                self._active_mask &= ~(1 << winner_port)
        batch = self.batch
        if batch is not None:
            slot = self._slot_base + winner_port * self.num_vcs + winner_vc
            batch.occupied -= 1
            batch.linkfree[link.link_id] = link.free_at
            if vc.route_out < 0:
                # Tail forwarded: the route latch cleared and the claimed
                # downstream VC was released back to its band just above.
                batch.routed[slot] = 0
                batch.hasoutvc[slot] = 0
                batch.vcfree[link.link_id, batch.klass[slot]] += 1
            else:
                batch.elig[slot] = vc.eligible_at
            if not buf._fifo:
                batch.occ[slot] = 0
        return flit

    def step_candidates(self, now: float, pairs: list[tuple[int, int]],
                        pre_pressured: int) -> list[tuple[int, Flit]]:
        """One allocation + traversal cycle over an explicit slot list.

        The batch backend's per-router entry point: behaviourally
        identical to :meth:`step` restricted to ``pairs``, an ascending
        (input port, VC) list that must contain every slot holding flits
        except those the backend proved side-effect-free and blocked this
        cycle (see :mod:`repro.network.batch` for the droppability
        argument; equivalence against :meth:`step` is property-tested).
        ``pre_pressured`` is the bitmask of output ports whose
        per-cycle pressure the backend already billed from its mirrors;
        only ports outside it are billed here.
        """
        inputs = self.inputs
        outputs = self.outputs
        nreq = 0
        out0 = i0 = v0 = -1
        requests = None
        pressured = 0
        bits = _BITS
        vc_classes = self._vc_classes
        for i, v in pairs:
            vc = inputs[i].vcs[v]
            out_idx = vc.route_out
            if out_idx < 0:
                head = vc.buffer.head()
                if not head.is_head:
                    raise SimulationError(
                        "wormhole invariant broken: body flit at VC head "
                        "with no latched route"
                    )
                out_idx = vc.route_out = self._route(head)
                if outputs[out_idx] is None:
                    raise SimulationError(
                        f"routing chose unattached output {out_idx} "
                        f"at router {self.router_id}"
                    )
                if vc_classes is not None:
                    vc.vc_class = self._rc_class
                vc.eligible_at = now + self.head_delay
                if self.batch is not None:
                    self._mirror_route(i, v, out_idx, vc.eligible_at)
            pressured |= 1 << out_idx
            if now < vc.eligible_at:
                continue
            op = outputs[out_idx]
            if vc.out_vc < 0:
                if vc_classes is None:
                    grant = op.free_vc()
                else:
                    lo, hi = self._class_bounds[vc.vc_class]
                    grant = op.free_vc_in(lo, hi)
                if grant < 0:
                    continue
                op.vc_owner[grant] = (i, v)
                vc.out_vc = grant
                if self.batch is not None:
                    self._mirror_grant(i, v)
            link = op.link
            if now < link.disabled_until or now < link.free_at:
                continue
            credits = op.credits
            if credits is not None and credits[vc.out_vc].available <= 0:
                continue
            if nreq == 0:
                out0, i0, v0 = out_idx, i, v
                nreq = 1
                continue
            if requests is None:
                requests = self._requests
                requests.clear()
                requests[out0] = [(i0, v0)]
            reqs = requests.get(out_idx)
            if reqs is None:
                requests[out_idx] = [(i, v)]
            else:
                reqs.append((i, v))
        fresh = pressured & ~pre_pressured
        for out_idx in (bits[fresh] if fresh < _BITS_LIMIT
                        else _wide_bits(fresh)):
            outputs[out_idx].link.pressure_accum += 1.0

        if nreq == 0:
            if not self._active_mask and self.registry is not None:
                self.registry.discard(self)
            return _NO_FORWARDS
        if requests is None:
            flit = self._forward(out0, i0, v0, now)
            if not self._active_mask and self.registry is not None:
                self.registry.discard(self)
            return [(out0, flit)]
        forwarded: list[tuple[int, Flit]] = []
        num_vcs = self.num_vcs
        for out_idx, reqs in requests.items():
            if len(reqs) == 1:
                winner_port, winner_vc = reqs[0]
            else:
                encoded = outputs[out_idx].arbiter.grant(
                    # Contested arbitration, same cold branch as in step.
                    [p * num_vcs + v for p, v in reqs]  # repro: noqa[HP004] cold branch, see above
                )
                winner_port, winner_vc = divmod(encoded, num_vcs)
            forwarded.append(
                (out_idx, self._forward(out_idx, winner_port, winner_vc, now))
            )
        requests.clear()
        if not self._active_mask and self.registry is not None:
            self.registry.discard(self)
        return forwarded
