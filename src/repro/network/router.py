"""The 5-stage pipelined virtual-channel wormhole router (paper Fig. 4(b)).

Each router has ``L`` local ports (injection inputs / ejection outputs to
the processing nodes of its rack) plus four mesh ports.  The pipeline is
the classic BW -> RC -> VA -> SA -> ST/LT of the PopNet simulator the paper
builds on: a head flit that reaches the front of its virtual-channel (VC)
buffer spends :attr:`Router.head_delay` cycles in route computation and
allocation before competing for the switch; body flits inherit the route
and VC and flow one per cycle behind it.

Virtual channels: every input port's buffer space is divided among
``num_vcs`` VCs.  A packet claims one downstream VC per hop (VC
allocation) and holds it until its tail leaves, but the *link* serialiser
is shared flit by flit — two packets heading over the same fiber interleave
at flit granularity instead of blocking each other for a whole 48-flit
packet.  Credits are per-VC.

The router core runs at a fixed frequency while links run at their own
(variable) rates — a flit only wins switch allocation when its output link
can start serialising (``link.can_accept``) and a downstream credit exists,
so slow or disabled links exert backpressure exactly as in the paper.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.flit import Flit
from repro.network.links import Link
from repro.network.routing import RoutingFunction, fault_aware_route


class VirtualChannel:
    """Per-VC state at an input port: buffer + wormhole route/VC latches."""

    __slots__ = ("buffer", "route_out", "eligible_at", "out_vc")

    def __init__(self, buffer: InputBuffer):
        self.buffer = buffer
        self.route_out = -1
        self.eligible_at = 0.0
        self.out_vc = -1


class InputPort:
    """An input port: ``num_vcs`` virtual channels plus upstream credits."""

    __slots__ = ("vcs", "upstream_credits")

    def __init__(self, num_vcs: int, vc_depth: int):
        self.vcs = [VirtualChannel(InputBuffer(vc_depth))
                    for _ in range(num_vcs)]
        #: Per-VC credit counters held by whoever feeds this port (the
        #: upstream router's output port, or the node for injection ports).
        self.upstream_credits: list[CreditCounter] | None = None

    @property
    def occupancy(self) -> int:
        """Total flits buffered across all VCs."""
        return sum(vc.buffer.occupancy for vc in self.vcs)

    def buffers(self) -> tuple[InputBuffer, ...]:
        return tuple(vc.buffer for vc in self.vcs)


class OutputPort:
    """An output port: the link, downstream VC ownership and credits."""

    __slots__ = ("link", "credits", "vc_owner", "arbiter")

    def __init__(self, link: Link, credits: list[CreditCounter] | None,
                 num_vcs: int, arbiter: RoundRobinArbiter):
        self.link = link
        #: Per-VC credits for the downstream input port; ``None`` for
        #: ejection ports, whose node sinks consume flits unconditionally.
        self.credits = credits
        #: Which (input port, input VC) owns each downstream VC, or None.
        self.vc_owner: list[tuple[int, int] | None] = [None] * num_vcs
        self.arbiter = arbiter

    def free_vc(self) -> int:
        """Lowest-index unowned downstream VC, or -1 if none."""
        for index, owner in enumerate(self.vc_owner):
            if owner is None:
                return index
        return -1


class Router:
    """One communication router of the clustered system."""

    __slots__ = (
        "router_id", "x", "y", "mesh_width", "num_local", "num_ports",
        "num_vcs", "inputs", "outputs", "route_fn", "head_delay",
        "nodes_per_cluster", "_active", "registry", "fault_stats",
    )

    def __init__(self, router_id: int, x: int, y: int, mesh_width: int,
                 num_local: int, buffer_depth: int, num_vcs: int,
                 head_delay: int, route_fn: RoutingFunction,
                 nodes_per_cluster: int):
        if num_local < 1:
            raise ConfigError(f"num_local must be >= 1, got {num_local!r}")
        if mesh_width < 1:
            raise ConfigError(f"mesh_width must be >= 1, got {mesh_width!r}")
        if num_vcs < 1:
            raise ConfigError(f"num_vcs must be >= 1, got {num_vcs!r}")
        if buffer_depth < num_vcs:
            raise ConfigError(
                f"buffer_depth {buffer_depth} cannot hold {num_vcs} VCs"
            )
        self.router_id = router_id
        self.x = x
        self.y = y
        self.mesh_width = mesh_width
        self.num_local = num_local
        self.num_ports = num_local + 4
        self.num_vcs = num_vcs
        vc_depth = buffer_depth // num_vcs
        self.inputs = [InputPort(num_vcs, vc_depth)
                       for _ in range(self.num_ports)]
        # Output ports are attached by the topology builder; missing mesh
        # directions (edge routers) stay None and must never be routed to.
        self.outputs: list[OutputPort | None] = [None] * self.num_ports
        self.route_fn = route_fn
        self.head_delay = head_delay
        self.nodes_per_cluster = nodes_per_cluster
        self._active: set[int] = set()
        #: Optional active-router registry maintained by the simulator: a
        #: router registers itself while any input port holds flits, so the
        #: routing phase only steps routers with work (see
        #: :class:`repro.engine.active.ActiveSet`).
        self.registry = None
        #: Optional shared reliability counter object (assigned by the
        #: reliability manager); ``None`` keeps routing on the fast path.
        self.fault_stats = None

    def attach_output(self, port: int, output: OutputPort) -> None:
        """Wire an output port (done once by the topology builder)."""
        if self.outputs[port] is not None:
            raise ConfigError(
                f"router {self.router_id} output {port} already attached"
            )
        self.outputs[port] = output

    def receive_flit(self, port: int, flit: Flit, now: float) -> None:
        """Accept a flit delivered by the input link of ``port``."""
        if not 0 <= flit.vc < self.num_vcs:
            raise SimulationError(
                f"flit arrived on router {self.router_id} port {port} with "
                f"VC {flit.vc} outside [0, {self.num_vcs})"
            )
        if not self._active and self.registry is not None:
            self.registry.add(self)
        self.inputs[port].vcs[flit.vc].buffer.push(flit, now)
        self._active.add(port)

    def _route(self, flit: Flit) -> int:
        """Compute the output port for a head flit (the RC stage)."""
        dst = flit.packet.dst
        dst_router, dst_local = divmod(dst, self.nodes_per_cluster)
        if dst_router == self.router_id:
            return dst_local
        dst_x = dst_router % self.mesh_width
        dst_y = dst_router // self.mesh_width
        direction = self.route_fn(self.x, self.y, dst_x, dst_y)
        if direction < 0:
            raise SimulationError(
                f"routing returned 'arrived' for a remote destination "
                f"{dst!r} at router {self.router_id}"
            )
        out = self.num_local + direction
        op = self.outputs[out]
        if op is not None and op.link.failed:
            return self._route_around(dst_x, dst_y)
        return out

    def _mesh_alive(self, direction: int) -> bool:
        """Whether a mesh direction exists and its link has not failed."""
        op = self.outputs[self.num_local + direction]
        return op is not None and not op.link.failed

    def _route_around(self, dst_x: int, dst_y: int) -> int:
        """Fault-aware fallback when the default route's link is dead."""
        direction = fault_aware_route(
            self.route_fn, self.x, self.y, dst_x, dst_y, self._mesh_alive
        )
        if direction < 0:
            raise SimulationError(
                f"router {self.router_id} is disconnected: every mesh "
                f"direction toward ({dst_x}, {dst_y}) is failed or absent"
            )
        if self.fault_stats is not None:
            self.fault_stats.reroutes += 1
        return self.num_local + direction

    def step(self, now: float) -> list[tuple[int, Flit]]:
        """One allocation + traversal cycle.

        Returns the (output port, flit) pairs forwarded this cycle — used
        by tests; the flits are already on their links.
        """
        active = self._active
        if not active:
            if self.registry is not None:
                self.registry.discard(self)
            return []
        num_vcs = self.num_vcs
        inputs = self.inputs
        outputs = self.outputs
        requests: dict[int, list[tuple[int, int]]] = {}
        pressured: set[int] = set()
        retired: list[int] = []
        for i in active:
            port = inputs[i]
            any_buffered = False
            for v, vc in enumerate(port.vcs):
                buf = vc.buffer
                if buf.is_empty:
                    continue
                any_buffered = True
                if vc.route_out < 0:
                    head = buf.head()
                    if not head.is_head:
                        raise SimulationError(
                            "wormhole invariant broken: body flit at VC head "
                            "with no latched route"
                        )
                    vc.route_out = self._route(head)
                    if outputs[vc.route_out] is None:
                        raise SimulationError(
                            f"routing chose unattached output {vc.route_out} "
                            f"at router {self.router_id}"
                        )
                    vc.eligible_at = now + self.head_delay
                pressured.add(vc.route_out)
                if now < vc.eligible_at:
                    continue
                op = outputs[vc.route_out]
                if vc.out_vc < 0:
                    # VC allocation: claim a free downstream VC.
                    grant = op.free_vc()
                    if grant < 0:
                        continue
                    op.vc_owner[grant] = (i, v)
                    vc.out_vc = grant
                if not op.link.can_accept(now):
                    continue
                if op.credits is not None and \
                        not op.credits[vc.out_vc].can_send():
                    continue
                reqs = requests.get(vc.route_out)
                if reqs is None:
                    requests[vc.route_out] = [(i, v)]
                else:
                    reqs.append((i, v))
            if not any_buffered:
                retired.append(i)
        for i in retired:
            active.discard(i)
        for out_idx in pressured:
            outputs[out_idx].link.pressure_accum += 1.0

        forwarded: list[tuple[int, Flit]] = []
        for out_idx, reqs in requests.items():
            op = outputs[out_idx]
            if len(reqs) == 1:
                winner_port, winner_vc = reqs[0]
            else:
                encoded = op.arbiter.grant(
                    [p * num_vcs + v for p, v in reqs]
                )
                winner_port, winner_vc = divmod(encoded, num_vcs)
            port = inputs[winner_port]
            vc = port.vcs[winner_vc]
            flit = vc.buffer.pop(now)
            flit.vc = vc.out_vc
            if op.credits is not None:
                op.credits[vc.out_vc].consume()
            if port.upstream_credits is not None:
                port.upstream_credits[winner_vc].refill()
            op.link.push(flit, now)
            forwarded.append((out_idx, flit))
            if flit.is_tail:
                op.vc_owner[vc.out_vc] = None
                vc.route_out = -1
                vc.out_vc = -1
            else:
                vc.eligible_at = now + 1.0
            for other in port.vcs:
                if not other.buffer.is_empty:
                    break
            else:
                active.discard(winner_port)
        if not active and self.registry is not None:
            self.registry.discard(self)
        return forwarded
