"""Input buffering and credit accounting.

The paper's routers have 16-flit input buffers per port with credit-based
backpressure: the upstream side of each link holds a credit counter equal to
the free slots downstream and may only forward a flit while credits remain.

:class:`InputBuffer` is the downstream FIFO; :class:`CreditCounter` is the
upstream view.  They are kept separate (rather than peeking across the link)
because that is the invariant hardware must maintain — the property tests
drive both ends and assert they never disagree.

The buffer also integrates its own occupancy over time.  The power-aware
policy (paper Eq. 10) needs the *average* buffer utilisation ``Bu`` over a
sampling window; integrating at push/pop events makes that O(flits) instead
of O(cycles x ports).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, SimulationError
from repro.network.flit import Flit


class InputBuffer:
    """A bounded FIFO of flits at a router input port.

    ``push``/``pop`` take the current cycle so the buffer can maintain a
    time-weighted occupancy integral for the policy's ``Bu`` statistic.
    """

    __slots__ = ("capacity", "_fifo", "_occ_integral", "_last_event")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"buffer capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._fifo: deque[Flit] = deque()
        self._occ_integral = 0.0
        self._last_event = 0.0

    def reset(self) -> None:
        """Drop buffered flits and zero the occupancy integral (warm rerun)."""
        self._fifo.clear()
        self._occ_integral = 0.0
        self._last_event = 0.0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return len(self._fifo)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._fifo)

    @property
    def is_empty(self) -> bool:
        return not self._fifo

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    def head(self) -> Flit:
        """Peek the oldest buffered flit (raises if empty)."""
        if not self._fifo:
            raise SimulationError("head() on an empty input buffer")
        return self._fifo[0]

    def _advance(self, now: float) -> None:
        self._occ_integral += len(self._fifo) * (now - self._last_event)
        self._last_event = now

    def push(self, flit: Flit, now: float) -> None:
        """Append an arriving flit at cycle ``now``.

        Overflow is a credit-protocol violation, so it raises
        :class:`SimulationError` instead of dropping silently.
        """
        fifo = self._fifo
        if len(fifo) >= self.capacity:
            raise SimulationError(
                "input buffer overflow: upstream sent a flit without credit"
            )
        # _advance(), inlined: push/pop run once per flit per hop.
        self._occ_integral += len(fifo) * (now - self._last_event)
        self._last_event = now
        fifo.append(flit)

    def pop(self, now: float) -> Flit:
        """Remove and return the oldest flit at cycle ``now``."""
        fifo = self._fifo
        if not fifo:
            raise SimulationError("pop() on an empty input buffer")
        self._occ_integral += len(fifo) * (now - self._last_event)
        self._last_event = now
        return fifo.popleft()

    def mean_utilisation(self, window_start: float, window_end: float) -> float:
        """Average fraction of slots occupied over a closed window.

        Implements the ``Bu`` term of paper Eq. 10 for one buffer.  Call at
        each window boundary; the internal integral is then reset so the
        next window starts fresh.
        """
        if window_end <= window_start:
            raise ConfigError(
                f"window must have positive length: [{window_start}, {window_end}]"
            )
        self._advance(window_end)
        mean_occupancy = self._occ_integral / (window_end - window_start)
        self._occ_integral = 0.0
        return min(1.0, mean_occupancy / self.capacity)


class CreditCounter:
    """Upstream credit state for one downstream input buffer.

    ``available`` is a plain slot attribute (not a property): the router's
    switch-allocation loop reads it once per candidate VC per cycle, and a
    property descriptor call there is measurable.  Treat it as read-only
    outside this class — mutate through :meth:`consume`/:meth:`refill`,
    which enforce the credit-protocol bounds.
    """

    __slots__ = ("capacity", "available")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"credit capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.available = capacity

    def reset(self) -> None:
        """Restore the full credit pool (warm rerun)."""
        self.available = self.capacity

    def can_send(self) -> bool:
        return self.available > 0

    def consume(self) -> None:
        """Spend one credit when forwarding a flit downstream."""
        if self.available <= 0:
            raise SimulationError("credit underflow: sent a flit with zero credits")
        self.available -= 1

    def refill(self) -> None:
        """Return one credit when the downstream buffer drains a flit."""
        if self.available >= self.capacity:
            raise SimulationError("credit overflow: more credits than buffer slots")
        self.available += 1
