"""Flit-level network simulator substrate (paper Sections 3.1 and 4.1).

A cycle-driven reproduction of the paper's evaluation vehicle: 5-stage
pipelined wormhole routers at 625 MHz with 16-flit buffers and 16-bit
flits, arranged in a clustered 2-D mesh (8 injection/ejection ports per
router plus 4 mesh ports), with every link modelled as a variable-bit-rate
serialiser.
"""

from repro.network.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.flit import Flit
from repro.network.links import EJECTION, INJECTION, MESH, Link
from repro.network.packet import Packet
from repro.network.router import InputPort, OutputPort, Router
from repro.network.routing import (
    DIRECTION_NAMES,
    EAST,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    get_routing_function,
    hop_count,
    xy_route,
    yx_route,
)
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh, Node

__all__ = [
    "ClusteredMesh",
    "CreditCounter",
    "DIRECTION_NAMES",
    "EAST",
    "EJECTION",
    "Flit",
    "INJECTION",
    "InputBuffer",
    "InputPort",
    "Link",
    "MESH",
    "MatrixArbiter",
    "NORTH",
    "Node",
    "OPPOSITE",
    "OutputPort",
    "Packet",
    "RoundRobinArbiter",
    "Router",
    "SOUTH",
    "Simulator",
    "StatsCollector",
    "WEST",
    "get_routing_function",
    "hop_count",
    "xy_route",
    "yx_route",
]
