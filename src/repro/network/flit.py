"""Flit — the flow-control unit moved by the simulator.

The paper's routers operate on fixed-size 16-bit flits regardless of the
(variable) link bit rates; a packet is a train of flits led by a *head* flit
that carries the route and closed by a *tail* flit that releases wormhole
resources.

Flits are the hot-path object of the simulator, so the class is deliberately
minimal: ``__slots__``, no properties on the fast fields, and identity by
object (never compared by value).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.network.packet import Packet


class Flit:
    """One flow-control unit of a packet.

    Attributes
    ----------
    packet:
        The owning :class:`~repro.network.packet.Packet`.
    index:
        Position within the packet (0 = head).
    is_head / is_tail:
        Wormhole role markers.  A single-flit packet is both.
    vc:
        The virtual channel the flit currently travels in.  Rewritten at
        every hop by switch traversal (the flit carries the *downstream*
        VC id while on a link).
    """

    __slots__ = ("packet", "index", "is_head", "is_tail", "vc")

    def __init__(self, packet: "Packet", index: int, is_head: bool, is_tail: bool):
        self.packet = packet
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        self.vc = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(pkt={self.packet.packet_id}, idx={self.index}, {role})"
