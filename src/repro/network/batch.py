"""Batched numpy stepping backend for the route phase.

The route phase dominates CPU at load (BENCH_7: ~46% moderate, ~52%
heavy), and most of that time is spent *discovering that nothing can
move*: a buffered VC whose head is not yet eligible, or whose claimed
output link is still serving the previous flit, costs a full scan
iteration in :meth:`~repro.network.router.Router.step` just to be
skipped.  This backend filters those slots out for the whole fabric at
once with numpy, then runs the authoritative scalar machinery only over
the slots that might actually do something.

Design: **authoritative Python state, mirrored gates.**  Routers, VCs,
credits and links stay the single source of truth; the backend keeps
struct-of-arrays *mirrors* of just the fields the blocked/unblocked
decision needs, maintained by write-through at the points where the
scalar code mutates them (``receive_flit``, route latch, VC grant,
``_forward``).  Each route phase:

1. gathers the occupied slots (``occ``) and computes a boolean *drop*
   vector — slots that provably cannot change any simulation state this
   cycle;
2. bills link pressure for every routed occupied slot's output link
   (exactly what the scalar scan's ``pressured`` mask does), deduped
   per link;
3. hands the surviving slots, per router in ascending router-id order,
   to :meth:`~repro.network.router.Router.step_candidates` — the same
   allocation/traversal body as ``step`` restricted to an explicit slot
   list — which performs every side effect with the scalar code.

**Droppability argument** (why bit-identity holds): a slot may be
dropped only when skipping it is free of side effects and its blocking
condition cannot clear mid-phase.

* *Unrouted* slots always stay: the scan latches their route (RC stage
  side effect).
* Routed slots with ``eligible_at > now`` are droppable: the scalar
  scan only bills pressure for them (done in step 2) and moves on;
  ``eligible_at`` never changes mid-phase.
* Routed, eligible slots *without* a downstream VC stay **unless** their
  allocation band has zero free VCs at phase start (``vcfree`` mirror):
  a failed allocation probe has no side effect, and a band cannot gain
  a free VC before the owning router's scan — releases happen only in
  that router's own forward stage, which runs *after* its entire scan,
  and no other router touches its ``vc_owner``.  Bands with a free VC
  stay candidates (the claim is a side effect).
* Routed, eligible, VC-claimed slots blocked on their output link
  (``free_at > now``) are droppable: the begin-of-phase ``linkfree``
  mirror is exact for them because only the owning router's own
  forwards move its outputs' ``free_at``, and each router's scan fully
  precedes its forwards — while *intra*-router forward-then-check
  interleavings are re-checked live inside ``step_candidates``.
* Credit-blocked slots are **not** droppable: a lower-id router's
  forward this same phase can refill the shared credit counter, so they
  must reach the scalar re-check in router order.

**Quiet-cycle skip:** when *every* occupied slot is dropped, nothing in
the fabric can move until the earliest of their wake times (eligibility
or link-free), and the phase reduces to replaying the same per-link
pressure charge each cycle.  ``quiet_until`` caches that horizon and
``_press_links`` the charge set; any :meth:`Router.receive_flit`
(delivery or injection arrivals are the only ways new work appears)
invalidates the skip.  Power-state changes cannot break it because
``disabled_until`` and credits are never drop factors.

Fault-injected runs never construct this backend (reroutes and
retransmissions mutate latched state mid-phase); the simulator keeps
the scalar path wholesale, which is also the fallback asserted by the
equivalence suite.  At low occupancy the numpy dispatch overhead
exceeds the scan it saves, so small cycles delegate to the unmodified
scalar :meth:`Router.step` per active router — bit-identical by
construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.engine.active import ActiveSet
    from repro.network.router import Router
    from repro.network.topology import NetworkFabric

#: Below this many buffered flits fabric-wide, the numpy gather/filter
#: costs more than the scalar scan it replaces; delegate to
#: :meth:`Router.step` per active router instead.
SMALL_OCCUPANCY = 24


class BatchRouteBackend:
    """Vectorized route-phase gate over mirrored router/link state."""

    __slots__ = (
        "routers", "links", "registry", "num_vcs", "_pv",
        "occ", "routed", "hasoutvc", "elig", "out_link", "linkfree",
        "vcfree", "klass", "occupied", "quiet_until", "_press_links",
        "_link_owner", "_link_out",
    )

    def __init__(self, fabric: "NetworkFabric",
                 registry: "ActiveSet[Router]"):
        if _np is None:
            raise ConfigError(
                "the numpy stepping backend requires numpy; install it or "
                "run with backend='python'"
            )
        routers = fabric.routers
        self.routers = routers
        self.links = fabric.links
        self.registry = registry
        first = routers[0]
        self.num_vcs = first.num_vcs
        #: Slots per router: ``num_ports * num_vcs`` (uniform fabric).
        self._pv = first.num_ports * first.num_vcs
        num_slots = len(routers) * self._pv
        num_links = len(fabric.links)
        #: 1 where the slot's VC buffer holds at least one flit.
        self.occ = _np.zeros(num_slots, dtype=_np.uint8)
        #: 1 where the slot has a latched route (``route_out >= 0``).
        self.routed = _np.zeros(num_slots, dtype=_np.uint8)
        #: 1 where the slot holds a downstream-VC claim (``out_vc >= 0``).
        self.hasoutvc = _np.zeros(num_slots, dtype=_np.uint8)
        #: Head-flit eligibility time, valid while ``routed``.
        self.elig = _np.zeros(num_slots, dtype=_np.float64)
        #: link_id of the latched output link, valid while ``routed``.
        self.out_link = _np.full(num_slots, -1, dtype=_np.int64)
        #: Mirror of every link's ``free_at`` (router outputs only are
        #: read; injection links are never a router's output).
        self.linkfree = _np.zeros(num_links, dtype=_np.float64)
        #: Free downstream VCs per (output link, allocation band) —
        #: the exact count of ``None`` entries in the owning output
        #: port's ``vc_owner`` band, maintained on claim and release.
        num_classes = len(first._class_bounds)
        self.vcfree = _np.zeros((num_links, num_classes), dtype=_np.int16)
        #: Allocation band of the slot's latched head, valid while
        #: ``routed`` (0 on single-class topologies).
        self.klass = _np.zeros(num_slots, dtype=_np.uint8)
        #: Total buffered flits fabric-wide (not occupied-slot count).
        self.occupied = 0
        #: First cycle the quiet-skip fast path must re-run the gate.
        self.quiet_until = 0.0
        #: Links whose pressure charge is replayed on skipped cycles.
        self._press_links: list = []
        #: link_id -> owning router id / local output-port index
        #: (-1 for links that are not router outputs).
        link_owner = [-1] * num_links
        link_out = [-1] * num_links
        pv = self._pv
        for rid, router in enumerate(routers):
            router.batch = self
            router._slot_base = rid * pv
            for out_idx, op in enumerate(router.outputs):
                if op is not None:
                    link_owner[op.link.link_id] = rid
                    link_out[op.link.link_id] = out_idx
        self._link_owner = link_owner
        self._link_out = link_out
        self.resync()

    def resync(self) -> None:
        """Rebuild every mirror from the authoritative router/link state.

        The constructor calls this once; tests attaching the backend to
        a warm fabric call it after out-of-band mutations.  Steady-state
        operation never needs it — the scalar code writes through.
        """
        self.occ[:] = 0
        self.routed[:] = 0
        self.hasoutvc[:] = 0
        self.elig[:] = 0.0
        self.out_link[:] = -1
        self.vcfree[:] = 0
        self.klass[:] = 0
        occupied = 0
        num_vcs = self.num_vcs
        for router in self.routers:
            base = router._slot_base
            multi_class = router._vc_classes is not None
            for i, port in enumerate(router.inputs):
                for v, vc in enumerate(port.vcs):
                    slot = base + i * num_vcs + v
                    buffered = len(vc.buffer._fifo)
                    if buffered:
                        self.occ[slot] = 1
                        occupied += buffered
                    if vc.route_out >= 0:
                        self.routed[slot] = 1
                        self.elig[slot] = vc.eligible_at
                        self.out_link[slot] = \
                            router.outputs[vc.route_out].link.link_id
                        if multi_class:
                            self.klass[slot] = vc.vc_class
                        if vc.out_vc >= 0:
                            self.hasoutvc[slot] = 1
            for op in router.outputs:
                if op is None:
                    continue
                lid = op.link.link_id
                for cls, (lo, hi) in enumerate(router._class_bounds):
                    free = 0
                    for owner in op.vc_owner[lo:hi]:
                        if owner is None:
                            free += 1
                    self.vcfree[lid, cls] = free
        self.occupied = occupied
        for link in self.links:
            self.linkfree[link.link_id] = link.free_at
        self.quiet_until = 0.0
        self._press_links = []

    def step(self, now: float) -> None:
        """Route phase for the whole fabric (replaces the router loop)."""
        registry = self.registry
        if not registry:
            return
        if now < self.quiet_until:
            for link in self._press_links:
                link.pressure_accum += 1.0
            return
        if self.occupied <= SMALL_OCCUPANCY:
            for router in registry.snapshot():
                router.step(now)
            return
        self._step_vector(now)

    def _step_vector(self, now: float) -> None:
        """Vector gate + per-router scalar stepping of surviving slots."""
        occ_slots = _np.nonzero(self.occ)[0]
        is_routed = self.routed[occ_slots] != 0
        elig = self.elig[occ_slots]
        linked = self.out_link[occ_slots]
        claimed = self.hasoutvc[occ_slots] != 0
        # -1 entries (unrouted) would wrap as fancy indices; they are
        # masked out of every decision below, so clamp them to 0.
        safe_link = _np.where(is_routed, linked, 0)
        lf = self.linkfree[safe_link]
        late = elig > now
        # Time-blocked: not yet eligible, or the claimed output link is
        # still serving (deterministic wake times — see quiet skip).
        drop_time = is_routed & (late | (claimed & (lf > now)))
        # Allocation-blocked: eligible but unclaimed with zero free VCs
        # in the latched band — cannot change before the owning router's
        # scan (releases happen only in its own later forward stage).
        # (2-D (link, band) lookup done on the flat view: one gather.)
        bandfree = self.vcfree.ravel()[
            safe_link * self.vcfree.shape[1] + self.klass[occ_slots]
        ]
        drop = drop_time | (is_routed & ~(late | claimed) & (bandfree == 0))
        # Pressure: the scalar scan bills each routed slot's output port
        # once per router per cycle; ports map 1:1 to links, so deduped
        # link ids give the same charge.  Also build each router's
        # already-billed port mask for step_candidates.
        links = self.links
        link_owner = self._link_owner
        link_out = self._link_out
        masks: dict[int, int] = {}
        press_links = []
        seen: set[int] = set()
        for lid in linked[is_routed].tolist():
            if lid in seen:
                continue
            seen.add(lid)
            link = links[lid]
            link.pressure_accum += 1.0
            press_links.append(link)
            rid = link_owner[lid]
            prev = masks.get(rid)
            if prev is None:
                masks[rid] = 1 << link_out[lid]
            else:
                masks[rid] = prev | (1 << link_out[lid])
        keep = occ_slots[~drop]
        if keep.shape[0] == 0:
            # Every occupied slot is routed and blocked: no forwards can
            # happen anywhere, so allocation-blocked slots stay blocked
            # (releases need forwards) and nothing moves before the
            # earliest *time*-blocked wake.  Cache it and the pressure
            # charge set; receive_flit invalidates on any new arrival.
            # All-allocation-blocked (a true deadlock) yields no wake
            # time and falls through to re-running the gate every cycle,
            # keeping the stall watchdog's diagnosis timeline intact.
            wakes = _np.where(elig > now, elig, lf)[drop_time]
            if wakes.shape[0]:
                self.quiet_until = float(wakes.min())
            self._press_links = press_links
            return
        keep_list = keep.tolist()
        routers = self.routers
        pv = self._pv
        num_vcs = self.num_vcs
        idx = 0
        total = len(keep_list)
        while idx < total:
            rid = keep_list[idx] // pv
            base = rid * pv
            limit = base + pv
            pairs = []
            while idx < total and keep_list[idx] < limit:
                pairs.append(divmod(keep_list[idx] - base, num_vcs))
                idx += 1
            pre = masks.get(rid)
            routers[rid].step_candidates(now, pairs,
                                         0 if pre is None else pre)
