"""Variable-bit-rate link transport.

Routers operate on fixed-size flits off a fixed 625 MHz clock while every
link has its own dynamically tuned clock (paper Section 4.1, "separate clock
domains").  We model a link's bit rate as a *service time*: at bit rate
``BR`` a 16-bit flit occupies the link for ``BR_max / BR`` router cycles
(1.0 cycle at 10 Gb/s, 2.0 at 5 Gb/s, fractional in between), after which a
fixed propagation delay applies.

Bit-rate transitions disable the link: pushes are refused while
``now < disabled_until`` (the CDR relock window, T_br = 20 cycles).  Flits
already serialised keep their scheduled arrival times — the policy changes
rates only at window boundaries, after in-progress flits have left the
serialiser.

The link also accumulates *busy time* per sampling window, which is exactly
the ``Lu`` numerator of paper Eq. 10.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.errors import ConfigError, LinkStateError
from repro.network.flit import Flit

#: Link roles within the clustered system (used for reporting and for the
#: power manager to pick Bu sources).
INJECTION = "injection"
EJECTION = "ejection"
MESH = "mesh"


class Link:
    """One unidirectional opto-electronic link.

    Parameters
    ----------
    link_id:
        Global index assigned by the topology builder.
    kind:
        One of :data:`INJECTION`, :data:`EJECTION`, :data:`MESH`.
    propagation_cycles:
        Fixed pipeline + time-of-flight delay added after serialisation.
    service_time:
        Router cycles one flit occupies the serialiser (>= 1.0 at full rate).
    """

    __slots__ = (
        "link_id",
        "kind",
        "propagation_cycles",
        "service_time",
        "free_at",
        "disabled_until",
        "deliver",
        "_in_flight",
        "busy_accum",
        "pressure_accum",
        "flits_carried",
        "registry",
        "failed",
        "faults",
    )

    def __init__(
        self,
        link_id: int,
        kind: str,
        propagation_cycles: float = 1.0,
        service_time: float = 1.0,
    ):
        if kind not in (INJECTION, EJECTION, MESH):
            raise ConfigError(f"unknown link kind {kind!r}")
        if propagation_cycles < 0.0:
            raise ConfigError(
                f"propagation_cycles must be >= 0, got {propagation_cycles!r}"
            )
        if service_time <= 0.0:
            raise ConfigError(f"service_time must be > 0, got {service_time!r}")
        self.link_id = link_id
        self.kind = kind
        self.propagation_cycles = propagation_cycles
        self.service_time = service_time
        self.free_at = 0.0
        self.disabled_until = 0.0
        #: Destination callback, assigned by the topology builder:
        #: ``deliver(flit, now)`` pushes into a router buffer or a node sink.
        self.deliver: Callable[[Flit, float], None] | None = None
        self._in_flight: deque[tuple[float, Flit]] = deque()
        self.busy_accum = 0.0
        #: Cycles in which at least one flit wanted this link (whether or
        #: not it could be served) — the work-conserving utilisation signal.
        #: Incremented by the router/node feeding the link.
        self.pressure_accum = 0.0
        self.flits_carried = 0
        #: Optional set maintained by the simulator: links with flits in
        #: flight register themselves so the delivery loop only visits
        #: active links instead of all ~1.2k links every cycle.
        self.registry: set["Link"] | None = None
        #: Hard-failure flag set by the reliability manager.  Routing
        #: refuses to send *new* packets over a failed link; flits already
        #: committed (wormhole worms in progress) drain normally — the
        #: detection/drain window of a real failure.
        self.failed = False
        #: Optional :class:`~repro.reliability.faults.LinkFaultState`
        #: (fault-injected runs only); ``None`` keeps arrival handling on
        #: the plain fast path.
        self.faults = None

    def reset(self) -> None:
        """Restore construction-time transport state for a warm rerun.

        ``deliver`` (the wiring) is structural and survives; ``registry``
        is reassigned by the simulator's run-state init, so clearing it
        here just drops the previous run's engine object.
        """
        self.service_time = 1.0
        self.free_at = 0.0
        self.disabled_until = 0.0
        self._in_flight.clear()
        self.busy_accum = 0.0
        self.pressure_accum = 0.0
        self.flits_carried = 0
        self.registry = None
        self.failed = False
        self.faults = None

    @property
    def has_in_flight(self) -> bool:
        return bool(self._in_flight)

    def can_accept(self, now: float) -> bool:
        """Whether a new flit may start serialising at cycle ``now``."""
        return now >= self.disabled_until and now >= self.free_at

    def push(self, flit: Flit, now: float) -> None:
        """Start serialising ``flit`` at cycle ``now``.

        The flit arrives downstream after the service time plus propagation.
        Pushing onto a busy or disabled link raises
        :class:`~repro.errors.LinkStateError` — callers must gate on
        :meth:`can_accept`.
        """
        if now < self.disabled_until or now < self.free_at:
            if now < self.disabled_until:
                reason = (
                    "disabled for a bit-rate transition until cycle "
                    f"{self.disabled_until}"
                )
            else:
                reason = f"busy serialising until cycle {self.free_at}"
            raise LinkStateError(
                f"{self.kind} link {self.link_id} cannot accept a flit at "
                f"cycle {now}: {reason} "
                f"(free_at={self.free_at}, "
                f"disabled_until={self.disabled_until})"
            )
        service_time = self.service_time
        self.free_at = now + service_time
        self.busy_accum += service_time
        self.flits_carried += 1
        in_flight = self._in_flight
        was_empty = not in_flight
        in_flight.append((self.free_at + self.propagation_cycles, flit))
        # Register after appending: a DeliverySchedule registry reads the
        # new arrival time to arm the link's delivery wake-up.
        if was_empty and self.registry is not None:
            self.registry.add(self)

    def pop_arrivals(self, now: float) -> list[Flit]:
        """Remove and return every flit whose arrival time has passed.

        Arrival times are monotonic (serialisation starts are monotonic and
        each arrival adds a positive service time), so a deque scan from the
        front is sufficient.  Under fault injection the pop is delegated to
        the link's :attr:`faults` state, which subjects each arrival to a
        CRC-corruption trial and runs the retransmission protocol.
        """
        if self.faults is not None:
            return self.faults.filter_arrivals(now)
        arrivals: list[Flit] = []
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            arrivals.append(in_flight.popleft()[1])
        return arrivals

    def set_service_time(self, service_time: float) -> None:
        """Retune the serialiser (a bit-rate change)."""
        if service_time <= 0.0:
            raise ConfigError(f"service_time must be > 0, got {service_time!r}")
        self.service_time = service_time

    def disable_for(self, now: float, cycles: float) -> None:
        """Disable the link for ``cycles`` starting at ``now`` (CDR relock)."""
        if cycles < 0.0:
            raise ConfigError(f"disable cycles must be >= 0, got {cycles!r}")
        self.disabled_until = max(self.disabled_until, now + cycles)

    def take_busy_time(self, now: float | None = None) -> float:
        """Return and reset the accumulated busy time (Eq. 10 numerator).

        ``push`` bills a flit's full service time up front, so a flit that
        straddles a sampling-window boundary would otherwise be counted
        entirely in the window where the push happened.  Passing the window
        end as ``now`` pro-rates that flit: the serialisation time still
        ahead (``free_at - now``) is carried into the next window instead of
        being billed to this one, making per-window Lu exact.  With ``now``
        omitted the full accumulator is taken (manual probes, tests).
        """
        busy = self.busy_accum
        if now is not None and self.free_at > now:
            carry = self.free_at - now
            if carry > busy:  # pragma: no cover - defensive (push invariant)
                carry = busy
            busy -= carry
            self.busy_accum = carry
        else:
            self.busy_accum = 0.0
        return busy

    def take_pressure_time(self) -> float:
        """Return and reset the accumulated demand-pressure time.

        Pressure counts cycles where the upstream side had a flit destined
        for this link, including cycles where credits, virtual channels or
        the serialiser blocked it.  A link can be the bottleneck of a
        congestion tree while its serialiser idles on empty credit
        counters; pressure sees that, busy time does not.
        """
        pressure = self.pressure_accum
        self.pressure_accum = 0.0
        return pressure
