"""Plain-text rendering helpers for series and tables.

The repository has no plotting dependency; experiments and examples render
time series as sparklines and results as aligned tables.  Kept in the
library (rather than in each example) so the CLI and the report generator
share one implementation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigError

#: Density ramp used for sparklines, lightest to darkest.  The lightest
#: bucket is a visible dot (space is reserved for NaN gaps).
SPARK_CHARS = ".,:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a numeric series as a one-line ASCII sparkline.

    NaNs render as spaces; the series is resampled to ``width`` columns by
    striding.  Returns ``"(no data)"`` for an empty or all-NaN series.
    """
    if width < 1:
        raise ConfigError(f"width must be >= 1, got {width!r}")
    clean = [v for v in values if not math.isnan(v)]
    if not clean:
        return "(no data)"
    lo, hi = min(clean), max(clean)
    span = (hi - lo) or 1.0
    stride = max(1, len(values) // width)
    sampled = list(values)[::stride][:width]
    chars = []
    for value in sampled:
        if math.isnan(value):
            chars.append(" ")
        else:
            index = int((value - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[index])
    return "".join(chars)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 min_width: int = 6) -> str:
    """Render an aligned plain-text table (right-aligned cells)."""
    if not headers:
        raise ConfigError("a table needs at least one column")
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(min_width, len(header),
            *(len(row[i]) for row in str_rows)) if str_rows
        else max(min_width, len(header))
        for i, header in enumerate(headers)
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def histogram_bar(counts: Sequence[int], width: int = 40) -> list[str]:
    """Render integer counts as horizontal bars, one line per bucket."""
    total = max(counts) if counts else 0
    lines = []
    for index, count in enumerate(counts):
        length = 0 if total == 0 else round(width * count / total)
        lines.append(f"{index:>3d} | {'#' * length} {count}")
    return lines
