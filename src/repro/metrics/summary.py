"""Run-result containers and paper-style normalisation.

The paper reports four metrics (Section 4.1): average latency, throughput,
power (as a fraction of the non-power-aware network) and the power-latency
product.  Latency and PLP are always *normalised against a non-power-aware
run of the same workload*; :func:`normalise` performs that division.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.metrics.reliability import ReliabilityReport


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation run produced."""

    label: str
    cycles: int
    packets_created: int
    packets_delivered: int
    mean_latency: float
    p95_latency: float
    max_latency: float
    relative_power: float
    accepted_rate: float
    transitions_up: int = 0
    transitions_down: int = 0
    power_series: tuple[tuple[int, float], ...] = ()
    injection_series: tuple[float, ...] = ()
    level_histogram: tuple[int, ...] = ()
    #: Reliability counters when the run injected faults, else ``None``.
    reliability: ReliabilityReport | None = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigError("a run must cover at least one cycle")

    @property
    def power_latency_product(self) -> float:
        """Relative power x mean latency (un-normalised latency)."""
        return self.relative_power * self.mean_latency

    @property
    def delivery_fraction(self) -> float:
        """Delivered / created packets (1.0 for a drained run)."""
        if self.packets_created == 0:
            return math.nan
        return self.packets_delivered / self.packets_created


@dataclass(frozen=True)
class NormalisedResult:
    """A power-aware run expressed relative to its baseline run.

    These are exactly the quantities in the paper's Table 3 and the y-axes
    of Fig. 5: latency ratio, power ratio (already relative by
    construction) and their product.
    """

    label: str
    latency_ratio: float
    power_ratio: float
    baseline_latency: float
    aware_latency: float

    @property
    def power_latency_product(self) -> float:
        return self.latency_ratio * self.power_ratio

    def as_dict(self) -> dict[str, float]:
        return {
            "latency_ratio": self.latency_ratio,
            "power_ratio": self.power_ratio,
            "power_latency_product": self.power_latency_product,
        }


def normalise(aware: RunResult, baseline: RunResult) -> NormalisedResult:
    """Express a power-aware run relative to its non-power-aware twin."""
    if baseline.relative_power != 1.0:
        raise ConfigError(
            "the baseline run must be non-power-aware (relative power 1.0), "
            f"got {baseline.relative_power!r}"
        )
    if math.isnan(baseline.mean_latency) or baseline.mean_latency <= 0.0:
        raise ConfigError(
            f"baseline latency is unusable: {baseline.mean_latency!r}"
        )
    return NormalisedResult(
        label=aware.label,
        latency_ratio=aware.mean_latency / baseline.mean_latency,
        power_ratio=aware.relative_power,
        baseline_latency=baseline.mean_latency,
        aware_latency=aware.mean_latency,
    )


@dataclass
class SweepSeries:
    """One plotted curve: x values with a result per point."""

    name: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    results: list[NormalisedResult] = field(default_factory=list)

    def append(self, x: float, result: NormalisedResult) -> None:
        self.x_values.append(x)
        self.results.append(result)

    def latency_curve(self) -> list[tuple[float, float]]:
        return [(x, r.latency_ratio) for x, r in zip(self.x_values, self.results)]

    def power_curve(self) -> list[tuple[float, float]]:
        return [(x, r.power_ratio) for x, r in zip(self.x_values, self.results)]

    def plp_curve(self) -> list[tuple[float, float]]:
        return [
            (x, r.power_latency_product)
            for x, r in zip(self.x_values, self.results)
        ]
