"""Latency-derived metrics: zero-load latency and saturation throughput.

The paper defines throughput as "the injection rate at which average
network latency exceeds twice the latency at zero network load"
(Section 4.1).  :func:`zero_load_latency` computes the analytic zero-load
packet latency of our router/link model; :func:`find_throughput` runs the
bisection search over injection rates.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.network.topologies import get_topology


def mean_hop_count(network: NetworkConfig) -> float:
    """Average minimal router-to-router hops under uniform traffic.

    Delegated to the configured topology, whose analytic model knows its
    own distance function — Manhattan distance on the mesh (where this
    reproduces the legacy ``(w^2-1)/(3w) + (h^2-1)/(3h)`` closed form
    bit-identically), ring distance under torus wrap-around (where
    Manhattan would silently overestimate), the concentrated grid for
    cmesh.  Self-pairs are included — for clustered systems the self-pair
    is a real route (two nodes in the same rack).
    """
    return get_topology(network).mean_min_hops()


def zero_load_latency(network: NetworkConfig, packet_size: int,
                      service_time: float = 1.0) -> float:
    """Analytic zero-load packet latency, cycles.

    Composition per the pipeline model:

    * injection link: service + propagation,
    * per router: head pipeline delay + 1 SA cycle is folded into
      ``head_pipeline_delay``; each hop adds link service + propagation,
    * ejection link: service + propagation,
    * serialisation tail: the last flit leaves ``(size-1) * service``
      after the head.
    """
    if packet_size < 1:
        raise ConfigError(f"packet_size must be >= 1, got {packet_size!r}")
    if service_time <= 0.0:
        raise ConfigError(f"service_time must be > 0, got {service_time!r}")
    hops = mean_hop_count(network)
    per_router = network.head_pipeline_delay
    per_link = service_time + network.link_propagation_cycles
    routers_on_path = hops + 1           # source rack router + one per hop
    links_on_path = hops + 2             # injection + mesh hops + ejection
    head_latency = routers_on_path * per_router + links_on_path * per_link
    tail = (packet_size - 1) * service_time
    return head_latency + tail


def find_throughput(latency_at: Callable[[float], float],
                    zero_load: float, low: float, high: float,
                    tolerance: float = 0.05, max_iterations: int = 12) -> float:
    """Bisect for the injection rate where latency crosses 2x zero-load.

    ``latency_at(rate)`` runs a simulation and returns the mean latency
    (may be ``inf``/NaN past saturation — treated as "above threshold").
    Returns the highest rate found below the threshold.
    """
    if zero_load <= 0.0:
        raise ConfigError(f"zero_load must be > 0, got {zero_load!r}")
    if not 0.0 < low < high:
        raise ConfigError(f"need 0 < low < high, got ({low!r}, {high!r})")
    threshold = 2.0 * zero_load

    def exceeds(rate: float) -> bool:
        latency = latency_at(rate)
        return latency != latency or latency > threshold  # NaN-safe

    if exceeds(low):
        return low
    if not exceeds(high):
        return high
    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2.0
        if exceeds(mid):
            high = mid
        else:
            low = mid
    return low
