"""Reliability report: what fault injection cost a run.

The counters the link-level retransmission protocol and the fault-aware
routing accumulate, frozen into one comparable record per run.  The
report rides inside :class:`~repro.metrics.summary.RunResult` (``None``
for fault-free runs), flows into ``Simulator.summary()`` as
``reliability_*`` keys, and is rendered by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ReliabilityReport:
    """Aggregate reliability counters for one run."""

    #: Flits that failed their CRC check at a receiver (every failed
    #: trial counts, including repeated failures of the same flit).
    flits_corrupted: int
    #: Retransmissions actually scheduled (corruptions minus budget
    #: exhaustions).
    flits_retransmitted: int
    #: Flits delivered with an uncorrectable residual error after the
    #: retry budget ran out.
    flits_dropped: int
    #: Total link transmissions that eventually delivered a flit (unique
    #: traversals, not counting retries).
    flits_carried: int
    #: Serialiser busy-time consumed by retransmissions, router cycles.
    retry_busy_cycles: float
    #: Energy burned by retransmissions, watt-cycles (0 for baseline runs
    #: with no power model attached).
    retry_energy_watt_cycles: float
    #: Head flits re-routed around a failed mesh link.
    reroutes: int
    #: Ladder down-steps and laser Pdec requests vetoed by the BER margin
    #: guard.
    guard_holds: int
    #: Mesh links hard-failed by the end of the run.
    failed_links: int
    #: Scheduled transient degradation windows that took effect.
    degradations: int
    #: Scheduled stuck-transition windows that took effect.
    stuck_transitions: int

    def __post_init__(self) -> None:
        for name in ("flits_corrupted", "flits_retransmitted",
                     "flits_dropped", "flits_carried", "reroutes",
                     "guard_holds", "failed_links", "degradations",
                     "stuck_transitions"):
            if getattr(self, name) < 0:
                raise ConfigError(
                    f"{name} must be >= 0, got {getattr(self, name)!r}"
                )

    @property
    def effective_goodput(self) -> float:
        """Fraction of link transmissions that were good, useful flits.

        ``(carried - dropped) / (carried + retransmitted)`` — the
        numerator removes flits that arrived corrupt anyway, the
        denominator adds the transmissions spent on retries.  1.0 for a
        clean run; falls as the channel degrades.
        """
        attempts = self.flits_carried + self.flits_retransmitted
        if attempts == 0:
            return 1.0
        return (self.flits_carried - self.flits_dropped) / attempts

    @property
    def observed_flit_error_rate(self) -> float:
        """Corruptions per transmission trial (compare to the analytic
        per-flit error probability of the operating point)."""
        trials = self.flits_carried + self.flits_corrupted
        if trials == 0:
            return 0.0
        return self.flits_corrupted / trials

    def as_dict(self) -> dict[str, float]:
        """Flat numeric view for summaries and tabular output."""
        return {
            "flits_corrupted": float(self.flits_corrupted),
            "flits_retransmitted": float(self.flits_retransmitted),
            "flits_dropped": float(self.flits_dropped),
            "retry_busy_cycles": self.retry_busy_cycles,
            "retry_energy_watt_cycles": self.retry_energy_watt_cycles,
            "reroutes": float(self.reroutes),
            "guard_holds": float(self.guard_holds),
            "failed_links": float(self.failed_links),
            "effective_goodput": self.effective_goodput,
        }


def format_reliability(report: ReliabilityReport) -> list[list[str]]:
    """Rows for the CLI's reliability table (metric, value)."""
    return [
        ["flits corrupted", str(report.flits_corrupted)],
        ["flits retransmitted", str(report.flits_retransmitted)],
        ["flits dropped (uncorrectable)", str(report.flits_dropped)],
        ["observed flit error rate",
         f"{report.observed_flit_error_rate:.2e}"],
        ["effective goodput", f"{report.effective_goodput:.4f}"],
        ["retry busy cycles", f"{report.retry_busy_cycles:.1f}"],
        ["retry energy (W-cyc)",
         f"{report.retry_energy_watt_cycles:.3e}"],
        ["reroutes around failures", str(report.reroutes)],
        ["margin-guard holds", str(report.guard_holds)],
        ["failed links", str(report.failed_links)],
    ]
