"""Live-simulation introspection helpers.

Debugging a power-aware network means asking *where* the flits and the
watts are right now.  These helpers snapshot a running simulator without
disturbing it; the examples and the stall watchdog use them, and they are
handy in notebooks.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ConfigError
from repro.network.links import EJECTION, INJECTION, MESH
from repro.network.simulator import Simulator


def buffer_occupancy_map(sim: Simulator) -> dict[int, int]:
    """Total buffered flits per router id (only non-empty routers)."""
    occupancy = {}
    for router in sim.network.routers:
        total = sum(ip.occupancy for ip in router.inputs)
        if total:
            occupancy[router.router_id] = total
    return occupancy


def source_backlog_map(sim: Simulator, top: int = 10) -> list[tuple[int, int]]:
    """The ``top`` nodes with the largest source queues, (node, flits)."""
    backlog = [(node.node_id, node.pending_flits)
               for node in sim.network.nodes if node.pending_flits]
    backlog.sort(key=lambda pair: -pair[1])
    return backlog[:top]


def level_map(sim: Simulator) -> dict[str, Counter]:
    """Committed ladder level histogram per link kind.

    Returns an empty mapping for non-power-aware simulations.
    """
    if sim.power is None:
        return {}
    histogram: dict[str, Counter] = {
        INJECTION: Counter(), EJECTION: Counter(), MESH: Counter(),
    }
    for pal in sim.power.links:
        histogram[pal.link.kind][pal.level] += 1
    return histogram


class LevelTimeline:
    """Committed-level histograms sampled at every policy window boundary.

    Attaches through the simulator's ``window`` hook, so it sees the
    network exactly as each window's policy decisions land — no polling,
    and zero cost on cycles without a window boundary.  Each sample is
    ``(window_end_cycle, histogram)`` where ``histogram[level]`` counts
    the links committed to that ladder level.
    """

    __slots__ = ("sim", "samples")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.samples: list[tuple[int, list[int]]] = []

    def _on_window(self, start: int, end: int) -> None:
        self.samples.append((end, self.sim.power.level_histogram()))

    def detach(self) -> None:
        """Stop sampling; collected samples stay available."""
        self.sim.hooks.remove("window", self._on_window)


def attach_level_timeline(sim: Simulator) -> LevelTimeline:
    """Record the per-window level histogram of a power-aware run.

    Returns the attached :class:`LevelTimeline`; call ``detach()`` to stop
    sampling early, or just read ``samples`` when the run ends.
    """
    if sim.power is None:
        raise ConfigError(
            "level timeline needs a power-aware simulation "
            "(config.power is None)"
        )
    timeline = LevelTimeline(sim)
    sim.hooks.add("window", timeline._on_window)
    return timeline


def congestion_report(sim: Simulator, top: int = 8) -> str:
    """A human-readable snapshot of where traffic is stuck."""
    lines = [f"cycle {sim.cycle}: {sim.stats.in_flight} packets in flight, "
             f"{sim.network.total_pending_flits} flits queued at sources"]
    backlog = source_backlog_map(sim, top)
    if backlog:
        lines.append("worst source queues: " + ", ".join(
            f"node {node}={flits}f" for node, flits in backlog))
    buffers = buffer_occupancy_map(sim)
    if buffers:
        worst = sorted(buffers.items(), key=lambda kv: -kv[1])[:top]
        lines.append("fullest routers: " + ", ".join(
            f"r{router}={flits}f" for router, flits in worst))
    levels = level_map(sim)
    for kind, counter in levels.items():
        if counter:
            ordered = ", ".join(f"L{level}:{count}"
                                for level, count in sorted(counter.items()))
            lines.append(f"{kind} link levels: {ordered}")
    return "\n".join(lines)
