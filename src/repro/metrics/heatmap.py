"""Mesh heatmaps: spatial views of utilisation, levels and congestion.

The paper's spatial-variance story (idle racks at minimum rate, busy paths
high) is best seen as a map of the mesh.  These helpers render a running
simulator's per-rack and per-direction state as ASCII grids — no plotting
dependency, usable in a terminal or a report.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.metrics.ascii import SPARK_CHARS
from repro.network.links import MESH
from repro.network.simulator import Simulator

#: Direction glyphs for the link-level map: east, west, north, south.
_DIRECTION_GLYPHS = ("E", "W", "N", "S")


def _cell_char(value: float, lo: float, hi: float) -> str:
    span = hi - lo
    if span <= 0.0:
        return SPARK_CHARS[0]
    index = int((value - lo) / span * (len(SPARK_CHARS) - 1))
    return SPARK_CHARS[max(0, min(index, len(SPARK_CHARS) - 1))]


def rack_occupancy_heatmap(sim: Simulator) -> str:
    """Buffered flits per rack as a router-grid character map.

    The grid shape and cell positions come from the fabric's topology,
    so the map renders the concentrated cmesh grid, the torus (wrap
    links not drawn) and the 1-high line correctly.
    """
    topology = sim.network.topology
    occupancy = [
        float(sum(ip.occupancy for ip in router.inputs))
        for router in sim.network.routers
    ]
    lo, hi = min(occupancy), max(occupancy)
    width, height = topology.grid_shape
    rows = []
    for y in range(height):
        row = "".join(
            _cell_char(occupancy[topology.router_at(x, y)], lo, hi)
            for x in range(width)
        )
        rows.append(row)
    legend = f"(flits per rack: min={lo:.0f} max={hi:.0f})"
    return "\n".join(rows + [legend])


def rack_level_heatmap(sim: Simulator) -> str:
    """Mean committed link level per rack (node-facing links included).

    Digits 0-9 map the mean level across the rack's injection/ejection
    links plus its outgoing mesh links, scaled to the ladder height —
    dark digits mean high bit rates.
    """
    if sim.power is None:
        raise ConfigError("rack_level_heatmap needs a power-aware simulator")
    topology = sim.network.topology
    top = sim.power.ladder.top_level
    per_router: dict[int, list[int]] = {
        r.router_id: [] for r in sim.network.routers
    }
    locals_ = topology.nodes_per_router
    for pal in sim.power.links:
        link = pal.link
        if link.kind == MESH:
            continue
        node_id = _node_for_local_link(sim, link.link_id)
        per_router[node_id // locals_].append(pal.level)
    width, height = topology.grid_shape
    rows = []
    for y in range(height):
        cells = []
        for x in range(width):
            levels = per_router[topology.router_at(x, y)]
            mean = sum(levels) / len(levels) if levels else 0.0
            digit = round(9 * mean / max(1, top))
            cells.append(str(digit))
        rows.append("".join(cells))
    return "\n".join(rows + ["(0=ladder bottom ... 9=full rate)"])


def _node_for_local_link(sim: Simulator, link_id: int) -> int:
    """Node id served by a local (injection/ejection) link.

    The topology wires local links in node order, two per node
    (injection then ejection), before any mesh links.
    """
    return link_id // 2


def mesh_utilisation_table(sim: Simulator, window: float) -> list[str]:
    """Per-mesh-link busy fraction since the caller's last reset.

    Returns ``router (x,y) dir: fraction`` lines sorted busiest-first.
    Pair with zeroing ``link.busy_accum`` before the measured interval.
    """
    if window <= 0.0:
        raise ConfigError(f"window must be > 0, got {window!r}")
    locals_ = sim.network.topology.nodes_per_router
    lines = []
    for router in sim.network.routers:
        for direction in range(4):
            output = router.outputs[locals_ + direction]
            if output is None:
                continue
            fraction = min(1.0, output.link.busy_accum / window)
            lines.append((fraction, router.x, router.y, direction))
    lines.sort(reverse=True)
    return [
        f"({x},{y}) {_DIRECTION_GLYPHS[d]}: {fraction:.2f}"
        for fraction, x, y, d in lines
    ]
