"""Evaluation metrics (paper Section 4.1).

Latency, throughput, power and power-latency product, plus the
normalisation against the non-power-aware baseline that every figure and
table of the paper applies.
"""

from repro.metrics.energy import (
    average_power_watts,
    normalise_power_series,
    series_mean,
    smooth_series,
    watt_cycles_to_joules,
)
from repro.metrics.latency import (
    find_throughput,
    mean_hop_count,
    zero_load_latency,
)
from repro.metrics.summary import (
    NormalisedResult,
    RunResult,
    SweepSeries,
    normalise,
)

__all__ = [
    "NormalisedResult",
    "RunResult",
    "SweepSeries",
    "average_power_watts",
    "find_throughput",
    "mean_hop_count",
    "normalise",
    "normalise_power_series",
    "series_mean",
    "smooth_series",
    "watt_cycles_to_joules",
    "zero_load_latency",
]
