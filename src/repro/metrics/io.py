"""Result serialisation: archive experiment outputs as JSON.

Sweeps at paper scale take hours; archiving each :class:`RunResult` lets
the report generator and notebooks re-render without re-running.  The
format is a plain JSON object per result (schema-versioned), with the
potentially large time series included explicitly.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import TextIO

from repro.errors import ConfigError
from repro.metrics.summary import NormalisedResult, RunResult

SCHEMA_VERSION = 1


def result_to_dict(result: RunResult) -> dict:
    """A JSON-serialisable dictionary of one run result."""
    payload = asdict(result)
    payload["schema_version"] = SCHEMA_VERSION
    # Tuples become lists under asdict+json; normalise explicitly so the
    # round-trip comparison is well defined.
    payload["power_series"] = [list(pair) for pair in result.power_series]
    payload["injection_series"] = list(result.injection_series)
    payload["level_histogram"] = list(result.level_histogram)
    return payload


def result_from_dict(payload: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    data = dict(payload)
    version = data.pop("schema_version", None)
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported result schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    data["power_series"] = tuple(
        (int(cycle), float(watts)) for cycle, watts in data["power_series"]
    )
    data["injection_series"] = tuple(data["injection_series"])
    data["level_histogram"] = tuple(data["level_histogram"])
    if data.get("reliability") is not None:
        from repro.metrics.reliability import ReliabilityReport

        data["reliability"] = ReliabilityReport(**data["reliability"])
    return RunResult(**data)


def save_results(results: dict[str, RunResult], stream: TextIO) -> None:
    """Write a name -> result mapping as JSON."""
    json.dump({name: result_to_dict(result)
               for name, result in results.items()}, stream, indent=1)


def load_results(stream: TextIO) -> dict[str, RunResult]:
    """Read a name -> result mapping written by :func:`save_results`."""
    payload = json.load(stream)
    return {name: result_from_dict(data) for name, data in payload.items()}


def save_results_file(results: dict[str, RunResult],
                      path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        save_results(results, stream)


def load_results_file(path: str | Path) -> dict[str, RunResult]:
    with open(path, "r", encoding="utf-8") as stream:
        return load_results(stream)


def normalised_to_dict(result: NormalisedResult) -> dict:
    """Serialise a normalised (paper-style) result."""
    return {
        "schema_version": SCHEMA_VERSION,
        "label": result.label,
        "latency_ratio": result.latency_ratio,
        "power_ratio": result.power_ratio,
        "baseline_latency": result.baseline_latency,
        "aware_latency": result.aware_latency,
    }


def normalised_from_dict(payload: dict) -> NormalisedResult:
    data = dict(payload)
    version = data.pop("schema_version", None)
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported result schema version {version!r}"
        )
    return NormalisedResult(**data)
