"""Energy/power metric helpers.

Converts between the simulator's watt-cycle accounting and physical units,
and provides the per-window power series used by the power-over-time
figures (Fig. 6(d), Fig. 7(b)(d)(f)).
"""

from __future__ import annotations

from repro.config import NetworkConfig
from repro.errors import ConfigError


def watt_cycles_to_joules(watt_cycles: float,
                          network: NetworkConfig) -> float:
    """Convert the simulator's watt-cycle energy unit to joules."""
    return watt_cycles * network.cycle_time_s


def average_power_watts(watt_cycles: float, cycles: float) -> float:
    """Mean power of an energy total over a cycle count, watts."""
    if cycles <= 0:
        raise ConfigError(f"cycles must be > 0, got {cycles!r}")
    return watt_cycles / cycles


def normalise_power_series(series: list[tuple[int, float]],
                           baseline_power: float) -> list[tuple[int, float]]:
    """Express a sampled (cycle, watts) series relative to the baseline."""
    if baseline_power <= 0.0:
        raise ConfigError(
            f"baseline_power must be > 0, got {baseline_power!r}"
        )
    return [(cycle, power / baseline_power) for cycle, power in series]


def smooth_series(series: list[tuple[int, float]],
                  window: int = 5) -> list[tuple[int, float]]:
    """Centred moving average over a (x, y) series.

    The paper notes the power curves "filter out small fluctuations in the
    injection rate curves and are thus smoother"; this helper produces the
    same visual smoothing for reports.
    """
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window!r}")
    if window == 1 or len(series) <= 1:
        return list(series)
    half = window // 2
    values = [y for _, y in series]
    smoothed = []
    for i, (x, _) in enumerate(series):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        smoothed.append((x, sum(values[lo:hi]) / (hi - lo)))
    return smoothed


def series_mean(series: list[tuple[int, float]]) -> float:
    """Mean of the y values of a sampled series."""
    if not series:
        raise ConfigError("cannot average an empty series")
    return sum(y for _, y in series) / len(series)
