"""The paper's primary contribution: power-aware link control.

* :mod:`~repro.core.levels` — bit-rate/voltage ladders, optical bands;
* :mod:`~repro.core.policy` — the windowed Lu/Bu link policy controller;
* :mod:`~repro.core.transitions` — transition state machines with the
  T_br/T_v delays;
* :mod:`~repro.core.laser_policy` — the external laser source controller;
* :mod:`~repro.core.power_link` — one link under power control, with exact
  energy accounting;
* :mod:`~repro.core.manager` — the network-wide power manager.
"""

from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import BitRateLadder, OpticalBands
from repro.core.manager import (
    NetworkPowerManager,
    ladder_from_config,
    power_model_from_config,
)
from repro.core.policy import HOLD, STEP_DOWN, STEP_UP, LinkPolicyController
from repro.core.power_link import PowerAwareLink
from repro.core.transitions import LinkTransitionEngine, TransitionState

__all__ = [
    "BitRateLadder",
    "HOLD",
    "LinkPolicyController",
    "LinkTransitionEngine",
    "NetworkPowerManager",
    "OpticalBands",
    "OpticalPowerController",
    "PowerAwareLink",
    "STEP_DOWN",
    "STEP_UP",
    "TransitionState",
    "ladder_from_config",
    "power_model_from_config",
]
