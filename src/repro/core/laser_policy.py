"""External laser source controller (paper Sections 3.2.2 and 3.3).

Modulator-based links cannot tune their optical power locally — the light
comes from the central external laser through a per-fiber variable optical
attenuator (VOA) with a ~100 us response time.  The external laser source
controller therefore tracks much longer traffic trends than the link policy
controller:

* every 200 us *epoch* it checks whether the link's bit rate stayed, for the
  whole epoch, inside a band that a lower optical level could serve; if so
  it issues a ``Pdec`` request and the optical power halves (one band down);
* when the link policy controller wants a bit rate above what the current
  optical level supports, a ``Pinc`` request is sent *immediately* — but
  the electrical bit rate must hold until the new light level settles
  (100 us later), which is the latency penalty Fig. 6(c) shows for
  multi-optical-level systems.

One controller instance manages one fiber's VOA.  Raising the band is
gated by the settle time; lowering is effective immediately for link
correctness (less light is *needed*, and the settle only removes excess).
"""

from __future__ import annotations

from repro.config import TransitionConfig
from repro.core.levels import OpticalBands
from repro.errors import LinkStateError


class OpticalPowerController:
    """Per-fiber optical band state machine."""

    __slots__ = (
        "bands", "config", "band", "pending_band", "ready_at",
        "max_band_needed", "increases", "decreases", "band_guard",
        "guard_holds",
    )

    def __init__(self, bands: OpticalBands, config: TransitionConfig,
                 initial_band: int | None = None):
        self.bands = bands
        self.config = config
        self.band = bands.top_band if initial_band is None else initial_band
        if not 0 <= self.band <= bands.top_band:
            raise LinkStateError(
                f"initial band must be in [0, {bands.num_bands}), got {self.band!r}"
            )
        self.pending_band = self.band
        self.ready_at = 0.0
        self.max_band_needed = 0
        self.increases = 0
        self.decreases = 0
        #: Optional BER margin guard (assigned by the reliability manager):
        #: ``guard(target_band, now) -> bool`` — False vetoes a Pdec.
        self.band_guard = None
        #: Pdec requests vetoed by the margin guard.
        self.guard_holds = 0

    @property
    def in_transition(self) -> bool:
        return self.pending_band != self.band

    def effective_band(self, now: float) -> int:
        """The band whose light level is actually on the fiber at ``now``."""
        if self.pending_band > self.band and now >= self.ready_at:
            self.band = self.pending_band
        return self.band

    def band_at(self, now: float) -> int:
        """Read-only :meth:`effective_band` (no pending-band commit).

        For observers — the channel model asks what light is on the fiber
        without perturbing the controller's own commit bookkeeping.
        """
        if self.pending_band > self.band and now >= self.ready_at:
            return self.pending_band
        return self.band

    def can_support(self, bit_rate: float, now: float) -> bool:
        """Whether the current light level supports ``bit_rate`` at ``now``."""
        return self.bands.band_for_rate(bit_rate) <= self.effective_band(now)

    def note_rate(self, bit_rate: float) -> None:
        """Record the band the link needed (called every policy window)."""
        needed = self.bands.band_for_rate(bit_rate)
        if needed > self.max_band_needed:
            self.max_band_needed = needed

    def request_increase(self, bit_rate: float, now: float) -> None:
        """Pinc: command the VOA toward the band ``bit_rate`` needs.

        The new level is usable once the VOA settles (100 us).  Repeated
        requests for the same or lower band are idempotent.
        """
        needed = self.bands.band_for_rate(bit_rate)
        if needed <= self.pending_band:
            return
        self.pending_band = needed
        self.ready_at = now + self.config.optical_transition_cycles
        self.increases += 1

    def on_epoch(self, now: float) -> None:
        """Epoch-end Pdec evaluation (every 200 us).

        Steps one band down only when the whole epoch fit in a lower band
        and no increase is pending.
        """
        self.effective_band(now)
        if not self.in_transition and self.max_band_needed < self.band \
                and self.band > 0:
            guard = self.band_guard
            if guard is not None and not guard(self.band - 1, now):
                # Margin guard: halving the light would push the link's
                # projected BER past the reliability target.
                self.guard_holds += 1
            else:
                self.band -= 1
                self.pending_band = self.band
                self.decreases += 1
        self.max_band_needed = 0
