"""The link policy controller (paper Section 3.3, Eqs. 10-11, Table 1).

One controller sits at every link (Fig. 4(b)).  Hardware counters collect,
over each time window ``Tw``:

* ``Lu`` — link utilisation: the fraction of router cycles in which a flit
  traverses the output link (Eq. 10);
* ``Bu`` — buffer utilisation: the average fraction of the *next* router's
  input buffers that are occupied (Eq. 10), used as a congestion signal.

At each window boundary the controller averages ``Lu`` over a sliding
window of the last ``N`` samples (Eq. 11) and compares it against a
(TL, TH) threshold pair chosen by congestion state: when ``Bu`` exceeds
``Bu_con`` = 0.5, queueing delay masks link slowness, so the more
aggressive (higher) thresholds of Table 1 apply.

The controller is a pure decision function over its small internal history:
it never touches the link itself, which keeps it unit- and property-
testable.  The decision is ``+1`` (step one level up), ``-1`` (one level
down) or ``0`` (hold).
"""

from __future__ import annotations

from collections import deque

from repro.config import PolicyConfig
from repro.errors import ConfigError

STEP_UP = 1
HOLD = 0
STEP_DOWN = -1


class LinkPolicyController:
    """Windowed-utilisation bit-rate policy for one link."""

    __slots__ = ("config", "_history", "decisions", "_last_lu", "_last_bu")

    def __init__(self, config: PolicyConfig):
        self.config = config
        self._history: deque[float] = deque(maxlen=config.history_windows)
        #: Counts of (-1, 0, +1) decisions, for reporting.
        self.decisions = {STEP_DOWN: 0, HOLD: 0, STEP_UP: 0}
        self._last_lu = 0.0
        self._last_bu = 0.0

    @property
    def averaged_utilisation(self) -> float:
        """Eq. 11: mean link utilisation over the sliding history."""
        if not self._history:
            return 0.0
        return sum(self._history) / len(self._history)

    @property
    def last_sample(self) -> tuple[float, float]:
        """The most recent (Lu, Bu) observation."""
        return self._last_lu, self._last_bu

    def thresholds(self, bu: float) -> tuple[float, float]:
        """Table 1: the (TL, TH) pair in force for a congestion level."""
        if not 0.0 <= bu <= 1.0:
            raise ConfigError(f"Bu must lie in [0, 1], got {bu!r}")
        cfg = self.config
        if bu >= cfg.congestion_threshold:
            return cfg.threshold_low_congested, cfg.threshold_high_congested
        return cfg.threshold_low_uncongested, cfg.threshold_high_uncongested

    def observe(self, lu: float, bu: float, down_ratio: float = 1.0) -> int:
        """Consume one window's (Lu, Bu) sample and emit a decision.

        ``down_ratio`` is ``rate_current / rate_one_level_down`` (>= 1),
        used by the headroom check to project utilisation after a
        down-step; pass 1.0 when already at the ladder bottom.
        """
        if not 0.0 <= lu <= 1.0:
            raise ConfigError(f"Lu must lie in [0, 1], got {lu!r}")
        if down_ratio < 1.0:
            raise ConfigError(f"down_ratio must be >= 1, got {down_ratio!r}")
        self._last_lu = lu
        self._last_bu = bu
        self._history.append(lu)
        low, high = self.thresholds(bu)
        averaged = self.averaged_utilisation
        if bu >= self.config.rescue_threshold:
            # Congestion rescue: a nearly full downstream buffer means this
            # link is inside a congestion tree even if credit starvation
            # keeps its own utilisation low — recover in parallel.
            decision = STEP_UP
        elif averaged > high:
            decision = STEP_UP
        elif averaged < low:
            decision = STEP_DOWN
        else:
            decision = HOLD
        if decision == STEP_DOWN:
            congested = bu >= self.config.congestion_threshold
            if self.config.congestion_inhibits_downscale and congested:
                # Stability guard: a low Lu on a congested link means
                # credit starvation, not low demand — don't slow it further.
                decision = HOLD
            elif (
                self.config.downscale_headroom_check
                and averaged * down_ratio > high
            ):
                # Headroom check: the lower rate could not carry the
                # currently observed traffic below TH — don't step into
                # oversubscription.
                decision = HOLD
        self.decisions[decision] += 1
        return decision

    def reset(self) -> None:
        """Restore the freshly-constructed state (link reconfiguration).

        Everything ``observe`` accumulates goes: the sliding history,
        the decision counters and the last (Lu, Bu) sample.  A
        controller that kept its counters across a reconfiguration
        would mis-report the new configuration's decision mix, and a
        stale ``last_sample`` would leak one run's telemetry into the
        next warm rerun.
        """
        self._history.clear()
        self.decisions = {STEP_DOWN: 0, HOLD: 0, STEP_UP: 0}
        self._last_lu = 0.0
        self._last_bu = 0.0
