"""Per-link transition state machine (paper Sections 3.2.1 and 4.1).

Changing a link's operating level is not free:

* **Voltage transitions** are slow (T_v = 100 cycles) but non-blocking —
  the link keeps running while the supply ramps, because the control policy
  orders the ramp so performance constraints always hold: *up* before a
  frequency increase, *down* after a frequency decrease.
* **Frequency (bit-rate) transitions** disable the link for T_br = 20
  cycles while the receiver CDR re-locks.

So a *step up* is: ramp voltage (T_v, link live at the old rate) ->
switch frequency (T_br, link disabled) -> stable at the new level.  A
*step down* is: switch frequency (T_br, disabled) -> ramp voltage down
(T_v, link live at the new rate) -> stable.

Energy accounting is conservative: while any transition is in flight the
link is billed at the *higher* of the old and new levels (the supply is at
or moving through the higher voltage for most of the transition).

The engine never initiates anything by itself — the policy calls
:meth:`LinkTransitionEngine.request_step`; the power manager calls
:meth:`~LinkTransitionEngine.advance` as simulation time passes.  A
``billing_listener`` callback is invoked with the exact event timestamp
right before the billed level changes, so the energy integrator can flush
precisely.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable

from repro.config import TransitionConfig
from repro.core.levels import BitRateLadder
from repro.errors import LinkStateError
from repro.network.links import Link


class TransitionState(enum.Enum):
    """Phase of the per-link transition state machine."""

    STABLE = "stable"
    VOLTAGE_RAMP_UP = "voltage_ramp_up"
    RELOCK = "relock"
    VOLTAGE_RAMP_DOWN = "voltage_ramp_down"
    #: LINK_OFF sleep rung: laser and SerDes fully powered off, link
    #: disabled indefinitely, zero power billed.  Entered only from the
    #: ladder bottom via :meth:`LinkTransitionEngine.request_sleep`.
    OFF = "off"
    #: Wake-up from OFF: laser re-bias + CDR lock from cold, a much longer
    #: disable window than a bit-rate relock, billed as real transition
    #: time at the bottom level's power.
    WAKE = "wake"


class LinkTransitionEngine:
    """Drives one link through level changes with realistic delays."""

    __slots__ = (
        "link", "ladder", "config", "service_time_fn", "level", "target",
        "state", "next_event", "steps_up", "steps_down", "disabled_cycles",
        "billing_listener", "sleeps", "wakes", "off_cycles", "_slept_at",
    )

    def __init__(self, link: Link, ladder: BitRateLadder,
                 config: TransitionConfig,
                 service_time_fn: Callable[[int], float],
                 initial_level: int | None = None):
        self.link = link
        self.ladder = ladder
        self.config = config
        #: Maps a ladder level to the link service time in router cycles.
        self.service_time_fn = service_time_fn
        self.level = ladder.top_level if initial_level is None \
            else ladder.clamp(initial_level)
        self.target = self.level
        self.state = TransitionState.STABLE
        self.next_event = 0.0
        self.steps_up = 0
        self.steps_down = 0
        self.disabled_cycles = 0.0
        self.sleeps = 0
        self.wakes = 0
        #: Total cycles spent in the OFF state (zero-power time).
        self.off_cycles = 0.0
        self._slept_at = 0.0
        self.billing_listener: Callable[[float], None] | None = None
        link.set_service_time(service_time_fn(self.level))

    @property
    def in_transition(self) -> bool:
        return self.state is not TransitionState.STABLE

    @property
    def is_off(self) -> bool:
        """Whether the link is parked in the LINK_OFF sleep rung."""
        return self.state is TransitionState.OFF

    @property
    def billing_level(self) -> int:
        """Ladder level whose power the link is currently billed at."""
        return max(self.level, self.target)

    @property
    def operating_rate(self) -> float:
        """Bit rate currently configured on the link serialiser."""
        if self.state in (TransitionState.STABLE,
                          TransitionState.VOLTAGE_RAMP_UP):
            return self.ladder.rate(self.level)
        return self.ladder.rate(self.target)

    def _notify(self, when: float) -> None:
        if self.billing_listener is not None:
            self.billing_listener(when)

    def request_step(self, direction: int, now: float) -> bool:
        """Ask for a one-level step; returns whether it was accepted.

        Rejected while another transition is in flight (the policy simply
        re-evaluates at the next window) or when already at the ladder end.
        """
        if direction not in (-1, 1):
            raise LinkStateError(f"direction must be +-1, got {direction!r}")
        if self.in_transition:
            return False
        new_level = self.ladder.clamp(self.level + direction)
        if new_level == self.level:
            return False
        self._notify(now)
        self.target = new_level
        if direction > 0:
            self.steps_up += 1
            self.state = TransitionState.VOLTAGE_RAMP_UP
            self.next_event = now + self.config.voltage_transition_cycles
        else:
            self.steps_down += 1
            self._begin_relock(now)
        # Zero-delay configurations complete instantly.
        self.advance(now)
        return True

    def request_sleep(self, now: float) -> bool:
        """Park the link in the LINK_OFF rung; returns acceptance.

        Only a stable link can sleep (the policy asks at window
        boundaries, never mid-transition).  The link is disabled
        indefinitely — it transmits nothing and bills zero power — until
        :meth:`request_wake` starts the wake-up sequence.
        """
        if self.in_transition:
            return False
        self._notify(now)
        self.state = TransitionState.OFF
        self.sleeps += 1
        self._slept_at = now
        self.next_event = math.inf
        self.link.disabled_until = math.inf
        return True

    def request_wake(self, now: float) -> bool:
        """Start the wake-up sequence from OFF; returns acceptance.

        The wake penalty (laser re-bias + cold CDR lock,
        ``link_off_wake_cycles``) is billed as a real disabled window: the
        link stays dark until it elapses, then returns to the level it
        slept at.
        """
        if self.state is not TransitionState.OFF:
            return False
        self._notify(now)
        self.off_cycles += now - self._slept_at
        self.wakes += 1
        self.state = TransitionState.WAKE
        wake = self.config.link_off_wake_cycles
        # disabled_until is +inf while OFF, so assign rather than extend.
        self.link.disabled_until = now + wake
        self.disabled_cycles += wake
        self.next_event = now + wake
        # Zero-delay configurations complete instantly.
        self.advance(now)
        return True

    def _begin_relock(self, when: float) -> None:
        relock = self.config.bit_rate_transition_cycles
        self.link.disable_for(when, relock)
        self.link.set_service_time(self.service_time_fn(self.target))
        self.disabled_cycles += relock
        self.state = TransitionState.RELOCK
        self.next_event = when + relock

    def advance(self, now: float) -> None:
        """Process every phase completion whose time has arrived."""
        while self.in_transition and now >= self.next_event:
            event_time = self.next_event
            if self.state is TransitionState.VOLTAGE_RAMP_UP:
                self._begin_relock(event_time)
            elif self.state is TransitionState.RELOCK:
                if self.target > self.level:
                    # Up-step: voltage was raised first, so we are done.
                    self._notify(event_time)
                    self.level = self.target
                    self.state = TransitionState.STABLE
                else:
                    # Down-step: ramp the voltage down in the background.
                    self.state = TransitionState.VOLTAGE_RAMP_DOWN
                    self.next_event = (
                        event_time + self.config.voltage_transition_cycles
                    )
            elif self.state is TransitionState.VOLTAGE_RAMP_DOWN:
                self._notify(event_time)
                self.level = self.target
                self.state = TransitionState.STABLE
            elif self.state is TransitionState.WAKE:
                # Wake-up complete: resume at the level we slept at.
                self._notify(event_time)
                self.target = self.level
                self.state = TransitionState.STABLE
