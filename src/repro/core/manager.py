"""Network-wide power manager.

Instantiates one :class:`~repro.core.power_link.PowerAwareLink` per fiber in
the topology (injection, ejection *and* mesh links all carry policy
controllers, per Fig. 4(b)), schedules the shared policy windows and — for
modulator systems with multiple optical levels — the external laser source
controller epochs, and aggregates energy for the power metrics.

The non-power-aware baseline needs no manager at all: its power is by
definition ``num_links * P_max`` for the whole run, which
:meth:`NetworkPowerManager.baseline_power` reports so experiments can
normalise exactly the way the paper does.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.config import (
    MODULATOR,
    NetworkConfig,
    PowerAwareConfig,
)
from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import BitRateLadder, OpticalBands
from repro.core.policy import HOLD
from repro.core.power_link import PowerAwareLink
from repro.core.tables import OperatingPointTable
from repro.engine.wheel import (
    PRI_EPOCH,
    PRI_SAMPLE,
    PRI_TRANSITION,
    PRI_WINDOW,
    EventWheel,
)
from repro.errors import ConfigError
from repro.network.topology import NetworkFabric
from repro.photonics.power_model import LinkPowerModel

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.hooks import HookRegistry


def ladder_from_config(config: PowerAwareConfig) -> BitRateLadder:
    """Build the bit-rate ladder a :class:`PowerAwareConfig` describes."""
    return BitRateLadder.linear(
        config.min_bit_rate, config.max_bit_rate, config.num_levels
    )


def power_model_from_config(config: PowerAwareConfig) -> LinkPowerModel:
    """Build the Table 2 link power model for the configured technology."""
    if config.technology == MODULATOR:
        return LinkPowerModel.modulator_link()
    return LinkPowerModel.vcsel_link()


#: Per-process memo of :class:`OperatingPointTable` instances keyed by the
#: config fields the table depends on (technology picks the power model,
#: the rate bounds and level count fix the ladder, the optical scheme
#: fixes the bands).  The table is a frozen dataclass of tuples, so
#: sharing one instance across managers — and across sweep points in a
#: warm worker — is safe.  Only the analytic-model construction path is
#: memoised; :meth:`NetworkPowerManager.replace_power_model` (measured
#: curves) always rebuilds.
_TABLE_MEMO: dict[tuple, OperatingPointTable] = {}
_TABLE_MEMO_MAX = 32


def _table_for_config(config: PowerAwareConfig, power_model: LinkPowerModel,
                      ladder: BitRateLadder,
                      bands) -> OperatingPointTable:
    key = (config.technology, config.min_bit_rate, config.max_bit_rate,
           config.num_levels, config.optical_levels)
    memo = _TABLE_MEMO
    table = memo.get(key)
    if table is None:
        table = OperatingPointTable.build(power_model, ladder, bands)
        if len(memo) >= _TABLE_MEMO_MAX:
            memo.pop(next(iter(memo)))
        memo[key] = table
    return table


class NetworkPowerManager:
    """Drives every power-aware link of one simulated network."""

    def __init__(self, topology: NetworkFabric, config: PowerAwareConfig,
                 network: NetworkConfig):
        self.config = config
        self.network = network
        self.ladder = ladder_from_config(config)
        self.power_model = power_model_from_config(config)
        if self.ladder.max_rate != config.max_bit_rate:
            raise ConfigError("ladder top must equal the configured max rate")

        ladder = self.ladder

        def service_time_fn(level: int) -> float:
            return network.flit_service_time(ladder.rate(level),
                                             ladder.max_rate)

        self.multi_optical = (
            config.technology == MODULATOR and config.optical_levels > 1
        )
        bands = None
        if self.multi_optical:
            if config.optical_levels != 3:
                raise ConfigError(
                    "only the paper's 3-level optical scheme is defined; "
                    f"got optical_levels={config.optical_levels!r}"
                )
            bands = OpticalBands.paper_three_level()
        self.bands = bands

        #: The analytic model evaluated once per (band x level) operating
        #: point; every link indexes this one shared table (memoised
        #: per process, so warm sweep workers and aware/baseline pairs
        #: reuse it across manager constructions).
        self.table = _table_for_config(config, self.power_model, ladder, bands)
        level_powers = self.table.level_powers
        self._service_time_fn = service_time_fn

        self.links: list[PowerAwareLink] = []
        for link, buffer in zip(topology.links, topology.downstream_buffers):
            optical = (
                OpticalPowerController(bands, config.transitions)
                if bands is not None else None
            )
            self.links.append(
                PowerAwareLink(
                    link=link,
                    ladder=ladder,
                    power_model=self.power_model,
                    policy_config=config.policy,
                    transition_config=config.transitions,
                    service_time_fn=service_time_fn,
                    downstream_buffer=buffer,
                    optical=optical,
                    level_powers=level_powers,
                )
            )
        self._fabric_topology = topology.topology
        if config.link_off:
            # Arm the LINK_OFF sleep rung where the topology allows it
            # (mesh links only wake via demand pressure, which some
            # topologies cannot generate on every link kind).
            fabric_topology = self._fabric_topology
            for pal in self.links:
                pal.can_sleep = fabric_topology.link_off_allowed(pal.link.kind)
        self._transitioning: set[PowerAwareLink] = set()
        #: Non-power-aware network power (all links at max), cached once —
        #: ``relative_power()`` divides by it per summary call.
        self._baseline_power = len(self.links) * self.table.max_power
        #: Network energy total, cached by :meth:`finalize` so repeated
        #: ``summary()`` calls after a run are O(1), not O(links).
        self._energy_total: float | None = None
        self.window = config.policy.window_cycles
        self.epoch = config.transitions.laser_epoch_cycles
        #: (cycle, total watts) samples for power-over-time figures.
        self.power_series: list[tuple[int, float]] = []
        self._finalized_at: float | None = None
        #: Optional :class:`~repro.engine.hooks.HookRegistry` (assigned by
        #: the simulator); ``window``/``transition`` hooks fire through it.
        self.hooks: "HookRegistry | None" = None
        self._wheel: EventWheel | None = None
        self._sample_interval: int | None = None

    # -- warm rerun ------------------------------------------------------------

    def structurally_compatible(self, config: PowerAwareConfig) -> bool:
        """Whether :meth:`reset` can rerun this manager under ``config``.

        True when every field the ladder, power model, operating-point
        table and optical-band scheme were built from is unchanged —
        policy and transition scalars are free to differ (they are plain
        per-run knobs the reset swaps in).
        """
        current = self.config
        return (config.technology == current.technology
                and config.min_bit_rate == current.min_bit_rate
                and config.max_bit_rate == current.max_bit_rate
                and config.num_levels == current.num_levels
                and config.optical_levels == current.optical_levels)

    def reset(self, config: PowerAwareConfig) -> None:
        """Restore the manager to its freshly-built state under ``config``.

        The structural artifacts — ladder, power model, operating-point
        table, per-link objects — survive; every link's control stack is
        rebuilt from the new point's policy/transition configs and all
        run-accumulated state (energy, series, transition tracking,
        scheduling bindings) is cleared, bit-identical to constructing a
        new manager on a fresh fabric (hypothesis-tested).
        """
        if not self.structurally_compatible(config):
            raise ConfigError(
                "reset() cannot change the power structure (technology, "
                "rate bounds, level counts); build a fresh manager"
            )
        self.config = config
        bands = self.bands
        for pal in self.links:
            optical = (
                OpticalPowerController(bands, config.transitions)
                if bands is not None else None
            )
            pal.reset(config.policy, config.transitions, optical)
        if config.link_off:
            fabric_topology = self._fabric_topology
            for pal in self.links:
                pal.can_sleep = fabric_topology.link_off_allowed(pal.link.kind)
        self._transitioning.clear()
        self._energy_total = None
        self.window = config.policy.window_cycles
        self.epoch = config.transitions.laser_epoch_cycles
        self.power_series = []
        self._finalized_at = None
        self.hooks = None
        self._wheel = None
        self._sample_interval = None

    # -- driving ---------------------------------------------------------------
    #
    # A manager is driven through exactly one of two mechanisms:
    #
    # * :meth:`schedule_events` registers window/epoch/sample wake-ups and
    #   per-transition completions on an event wheel (the simulator's
    #   default), so quiet cycles cost nothing;
    # * :meth:`on_cycle` is the legacy per-cycle poll, kept for manual
    #   driving (unit tests) and the simulator's ``step_all`` mode.
    #
    # Both produce bit-identical behaviour (property-tested).

    def schedule_events(self, wheel: EventWheel, *,
                        sample_interval: int | None = None) -> None:
        """Register this manager's periodic work on ``wheel``.

        Schedules the first window-policy evaluation, the first laser epoch
        (multi-optical systems only) and — when ``sample_interval`` is given
        — power sampling starting at cycle 0.  Each event reschedules its
        successor, and window evaluations that start a transition schedule
        that link's completion wake-ups.
        """
        self._wheel = wheel
        wheel.schedule(self.window, self._window_event, PRI_WINDOW)
        if self.multi_optical:
            wheel.schedule(self.epoch, self._epoch_event, PRI_EPOCH)
        if sample_interval is not None:
            if sample_interval < 1:
                raise ConfigError("sample_interval must be >= 1")
            self._sample_interval = sample_interval
            wheel.schedule(0, self._sample_event, PRI_SAMPLE)

    def on_cycle(self, now: int) -> None:
        """Advance transitions; run window/epoch logic on boundaries."""
        if self._transitioning:
            # Iterate a snapshot sorted by link_id: the determinism contract
            # forbids unordered-set iteration in any decision path, and the
            # snapshot also makes the discards below safe.
            for pal in sorted(self._transitioning,
                              key=lambda p: p.link.link_id):
                pal.advance(now)
                if not pal.engine.in_transition:
                    self._transitioning.discard(pal)
        if now > 0 and now % self.window == 0:
            self._run_window(now)
        if self.multi_optical and now > 0 and now % self.epoch == 0:
            for pal in self.links:
                pal.optical.on_epoch(now)

    def _run_window(self, now: int) -> None:
        """Evaluate every link's policy for the window ending at ``now``."""
        start = now - self.window
        hooks = self.hooks
        transition_hooks = hooks.transition if hooks is not None else ()
        policy_hooks = hooks.policy if hooks is not None else ()
        wheel = self._wheel
        for pal in self.links:
            decision = pal.on_window(start, now)
            if policy_hooks:
                for callback in policy_hooks:
                    callback(pal, pal.last_lu, pal.last_bu, decision, now)
            if transition_hooks and decision != HOLD:
                for callback in transition_hooks:
                    callback(pal, decision, now)
            # A link parked OFF has next_event == inf: it is not tracked
            # as transitioning (nothing to advance — only a later window's
            # demand check wakes it), and scheduling an infinite-time
            # wheel event would be meaningless.
            if pal.engine.in_transition \
                    and pal.engine.next_event != math.inf \
                    and pal not in self._transitioning:
                self._transitioning.add(pal)
                if wheel is not None:
                    wheel.schedule(pal.engine.next_event,
                                   self._make_transition_wake(pal),
                                   PRI_TRANSITION)
        if hooks is not None and hooks.window:
            for callback in hooks.window:
                callback(start, now)

    def _make_transition_wake(self, pal: PowerAwareLink):
        """A wheel callback advancing ``pal`` at its next phase boundary."""

        def wake(now: int) -> None:
            pal.advance(now)
            if pal.engine.in_transition \
                    and pal.engine.next_event != math.inf:
                self._wheel.schedule(pal.engine.next_event, wake,
                                     PRI_TRANSITION)
            else:
                self._transitioning.discard(pal)

        return wake

    def _window_event(self, now: int) -> None:
        self._run_window(now)
        self._wheel.schedule(now + self.window, self._window_event, PRI_WINDOW)

    def _epoch_event(self, now: int) -> None:
        for pal in self.links:
            pal.optical.on_epoch(now)
        self._wheel.schedule(now + self.epoch, self._epoch_event, PRI_EPOCH)

    def _sample_event(self, now: int) -> None:
        self.sample_power(now)
        self._wheel.schedule(now + self._sample_interval, self._sample_event,
                             PRI_SAMPLE)

    def sample_power(self, now: int) -> float:
        """Record and return the instantaneous network link power, watts."""
        total = sum(pal.current_power() for pal in self.links)
        self.power_series.append((now, total))
        hooks = self.hooks
        if hooks is not None and hooks.power_sample:
            for callback in hooks.power_sample:
                callback(now, total)
        return total

    # -- results ---------------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Flush every link's energy integral at the end of a run.

        Idempotent: finalizing at a cycle at or before the last finalize is
        a no-op, so repeated ``summary()``/``relative_power()`` calls do not
        re-walk every link.  Running further and finalizing at a later
        cycle extends the integrals as expected.
        """
        if self._finalized_at is not None and now <= self._finalized_at:
            return
        for pal in self.links:
            pal.finalize(now)
        self._finalized_at = now
        self._energy_total = sum(pal.energy_watt_cycles for pal in self.links)

    def total_energy_watt_cycles(self) -> float:
        """Network energy integral, watt-cycles.

        O(1) once :meth:`finalize` has run (every caller in the run/summary
        path finalizes first); walks the links only before finalize or
        after running further — a later-cycle finalize refreshes the cache.
        """
        if self._energy_total is not None:
            return self._energy_total
        return sum(pal.energy_watt_cycles for pal in self.links)

    def baseline_power(self) -> float:
        """Power of the non-power-aware network, watts (all links at max)."""
        return self._baseline_power

    def average_power(self, total_cycles: float) -> float:
        """Mean network link power over the run, watts."""
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        return self.total_energy_watt_cycles() / total_cycles

    def relative_power(self, total_cycles: float) -> float:
        """Average power as a fraction of the non-power-aware network.

        This is the paper's headline power metric ("power dissipated by our
        power-aware network is expressed as a percentage of that consumed by
        a non-power-aware network with all links at 10 Gb/s").
        """
        return self.average_power(total_cycles) / self.baseline_power()

    def level_histogram(self) -> list[int]:
        """How many links sit at each committed ladder level right now."""
        histogram = [0] * self.ladder.num_levels
        for pal in self.links:
            histogram[pal.level] += 1
        return histogram

    def transition_totals(self) -> dict[str, int]:
        """Total up/down transitions across all links."""
        up = sum(pal.engine.steps_up for pal in self.links)
        down = sum(pal.engine.steps_down for pal in self.links)
        return {"up": up, "down": down}

    def asleep_count(self) -> int:
        """How many links are parked in the LINK_OFF rung right now."""
        return sum(1 for pal in self.links if pal.engine.is_off)

    def sleep_totals(self) -> dict[str, int]:
        """Total LINK_OFF sleeps and wakes across all links."""
        sleeps = sum(pal.engine.sleeps for pal in self.links)
        wakes = sum(pal.engine.wakes for pal in self.links)
        return {"sleeps": sleeps, "wakes": wakes}

    def replace_power_model(self, model) -> None:
        """Swap in a different link power model before the run starts.

        This is the paper's Section 5 workflow: feed measured test-chip
        power curves (:class:`~repro.photonics.measured.MeasuredLinkPowerModel`)
        — or any object with ``power(bit_rate)`` and ``max_power`` — into
        the simulator in place of the analytic models.  Refused once any
        energy has accrued, because mixing models mid-run would corrupt
        the accounting.
        """
        if any(pal.energy_watt_cycles > 0.0 for pal in self.links):
            raise ConfigError(
                "cannot replace the power model after energy has accrued; "
                "swap models before running the simulator"
            )
        self.power_model = model
        self.table = OperatingPointTable.build(model, self.ladder, self.bands)
        self._baseline_power = len(self.links) * self.table.max_power
        levels = self.table.level_powers
        for pal in self.links:
            pal.level_powers = levels

    def link_report(self, total_cycles: float) -> list[dict[str, float | str]]:
        """Per-link accounting rows (kind, level, transitions, energy).

        One row per fiber, for offline analysis of where the power went.
        ``total_cycles`` converts each link's energy into average watts.
        """
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        rows: list[dict[str, float | str]] = []
        for pal in self.links:
            rows.append({
                "link_id": pal.link.link_id,
                "kind": pal.link.kind,
                "level": pal.level,
                "bit_rate": pal.bit_rate,
                "ups": pal.engine.steps_up,
                "downs": pal.engine.steps_down,
                "flits": pal.link.flits_carried,
                "avg_power_w": pal.energy_watt_cycles / total_cycles,
            })
        return rows

    def energy_by_kind(self, total_cycles: float) -> dict[str, float]:
        """Average power per link kind, watts (injection/ejection/mesh)."""
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        totals: dict[str, float] = {}
        for pal in self.links:
            kind = pal.link.kind
            totals[kind] = totals.get(kind, 0.0) \
                + pal.energy_watt_cycles / total_cycles
        return totals
