"""Precomputed operating-point tables (paper Table 2, evaluated once).

The analytical photonics models are a static function of the operating
point: link power at a (bit-rate ladder level, optical band) pair never
changes during a run.  Re-evaluating the component scaling math inside the
energy-integral and power-sampling hot paths — once per link, per billing
event — is therefore pure waste.  Like the PopNet-derived simulators the
paper builds on, we evaluate the model *once per operating point* at
construction and turn every hot-path query into a flat table index.

:class:`OperatingPointTable` is that evaluation, frozen:

* ``grid[band][level]`` — link power in watts at every (optical band,
  ladder level) operating point.  The Table 2 electrical budget does not
  depend on the optical band (the external laser sits outside the system
  power budget), so with the analytic models every band row is identical;
  the band axis exists so measured models whose receiver power depends on
  the received optical level (paper Section 5) drop in without touching
  any hot path.
* ``band_fractions`` / ``attenuations_db`` — the per-band optical supply
  levels, tabulated from :class:`~repro.core.levels.OpticalBands` for
  laser-side accounting and telemetry.

The analytical model remains the single source of truth: it is consulted
here at build time, and by anything (tests, reports, transition
interpolation) that needs power at an off-ladder operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.levels import BitRateLadder, OpticalBands
from repro.errors import ConfigError


class PowerModel(Protocol):
    """What :meth:`OperatingPointTable.build` needs from a power model.

    Satisfied structurally by the analytic
    :class:`~repro.photonics.power_model.LinkPowerModel` and by any
    measured Section 5 model.  Models whose receiver power depends on the
    optical band may additionally expose
    ``power_at_band(bit_rate, fraction)``; that extension stays
    duck-typed because most models legitimately lack it.
    """

    @property
    def max_power(self) -> float: ...

    def power(self, bit_rate: float) -> float: ...


@dataclass(frozen=True)
class OperatingPointTable:
    """Flat per-(band, level) link power, evaluated once at build time."""

    #: Ladder bit rates, ascending (level index -> bits/second).
    rates: tuple[float, ...]
    #: ``grid[band][level]`` -> link power in watts.
    grid: tuple[tuple[float, ...], ...]
    #: Per-band optical supply as a fraction of the highest band.
    band_fractions: tuple[float, ...]
    #: Per-band VOA attenuation relative to the highest band, dB.
    attenuations_db: tuple[float, ...]
    #: Link power at the maximum operating point, watts.
    max_power: float

    def __post_init__(self) -> None:
        if not self.grid:
            raise ConfigError("an operating-point table needs >= 1 band row")
        for row in self.grid:
            if len(row) != len(self.rates):
                raise ConfigError(
                    f"band row has {len(row)} levels, ladder has "
                    f"{len(self.rates)}"
                )
        if len(self.band_fractions) != len(self.grid):
            raise ConfigError("one band fraction per band row required")

    @classmethod
    def build(cls, power_model: PowerModel, ladder: BitRateLadder,
              bands: OpticalBands | None = None) -> "OperatingPointTable":
        """Evaluate ``power_model`` once per (ladder level x optical band).

        ``power_model`` is any :class:`PowerModel` — structurally, anything
        with ``power(bit_rate)`` and ``max_power``.  Models whose receiver
        power depends on the optical band may expose
        ``power_at_band(bit_rate, fraction)``; otherwise the electrical
        row is band-invariant and shared.

        ``bands=None`` builds the single-band table (VCSEL systems and
        single-optical-level modulator systems).
        """
        if bands is None:
            bands = OpticalBands.single()
        rates = ladder.rates
        banded_power = getattr(power_model, "power_at_band", None)
        if banded_power is None:
            # Band-invariant electrical budget: evaluate one row and share
            # it across bands (identical tuples, by construction).
            row = tuple(power_model.power(rate) for rate in rates)
            grid = tuple(row for _ in range(bands.num_bands))
        else:
            grid = tuple(
                tuple(banded_power(rate, bands.fraction(band))
                      for rate in rates)
                for band in range(bands.num_bands)
            )
        return cls(
            rates=rates,
            grid=grid,
            band_fractions=bands.power_fractions,
            attenuations_db=tuple(
                bands.attenuation_db(band)
                for band in range(bands.num_bands)
            ),
            max_power=power_model.max_power,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self.rates)

    @property
    def num_bands(self) -> int:
        return len(self.grid)

    @property
    def level_powers(self) -> tuple[float, ...]:
        """The top band's per-level power row — the billing table.

        Energy billing charges the electrical budget, which the analytic
        models define at full optical supply; this is the row every
        :class:`~repro.core.power_link.PowerAwareLink` indexes.
        """
        return self.grid[-1]

    def power(self, level: int, band: int | None = None) -> float:
        """Table lookup: link power at an operating point, watts."""
        row = self.grid[self.num_bands - 1 if band is None else band]
        return row[level]
