"""Power-aware link: transport + ladder + policy + transitions + energy.

This is where the paper's pieces meet: a :class:`PowerAwareLink` binds one
transport :class:`~repro.network.links.Link` to

* a :class:`~repro.core.levels.BitRateLadder` and the per-level power drawn
  from a :class:`~repro.photonics.power_model.LinkPowerModel`,
* a :class:`~repro.core.policy.LinkPolicyController` making window-boundary
  decisions from the link's Lu/Bu counters,
* a :class:`~repro.core.transitions.LinkTransitionEngine` executing those
  decisions with realistic delays, and
* (modulator systems with multiple optical levels) an
  :class:`~repro.core.laser_policy.OpticalPowerController` gating upward
  bit-rate steps on external light availability.

Energy accounting is exact and O(state changes): the link is billed at its
current level's power between billing events; the transition engine reports
every billing change with its precise timestamp.
"""

from __future__ import annotations

import math

from repro.config import PolicyConfig, TransitionConfig
from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import BitRateLadder
from repro.core.policy import HOLD, STEP_DOWN, STEP_UP, LinkPolicyController
from repro.core.transitions import LinkTransitionEngine, TransitionState
from repro.network.buffers import InputBuffer
from repro.network.links import Link
from repro.photonics.power_model import LinkPowerModel


class PowerAwareLink:
    """One link under run-time power control."""

    __slots__ = (
        "link", "ladder", "engine", "policy", "optical", "downstream_buffer",
        "level_powers", "energy_watt_cycles", "_last_charge", "pending_up",
        "windows_observed", "step_down_guard", "guard_holds",
        "last_lu", "last_bu", "last_step_accepted", "can_sleep",
    )

    def __init__(self, link: Link, ladder: BitRateLadder,
                 power_model: LinkPowerModel, policy_config: PolicyConfig,
                 transition_config: TransitionConfig,
                 service_time_fn,
                 downstream_buffer: tuple[InputBuffer, ...] | None,
                 optical: OpticalPowerController | None = None,
                 initial_level: int | None = None,
                 level_powers: tuple[float, ...] | None = None):
        self.link = link
        self.ladder = ladder
        #: Power (watts) per ladder level.  The manager passes in one shared
        #: :class:`~repro.core.tables.OperatingPointTable` row so the model
        #: is evaluated once per network, not once per link; standalone
        #: construction (unit tests) falls back to evaluating the model.
        if level_powers is None:
            level_powers = tuple(power_model.power(r) for r in ladder.rates)
        self.level_powers = level_powers
        self.policy = LinkPolicyController(policy_config)
        self.engine = LinkTransitionEngine(
            link, ladder, transition_config, service_time_fn, initial_level
        )
        self.engine.billing_listener = self._charge
        self.optical = optical
        self.downstream_buffer = downstream_buffer
        self.energy_watt_cycles = 0.0
        self._last_charge = 0.0
        self.pending_up = False
        self.windows_observed = 0
        #: Optional BER margin guard (assigned by the reliability manager):
        #: ``guard(target_level, now) -> bool`` — False vetoes a policy
        #: STEP_DOWN whose target level would violate the BER margin.
        self.step_down_guard = None
        #: Down-steps vetoed by the margin guard.
        self.guard_holds = 0
        #: Whether the LINK_OFF sleep rung below the ladder bottom is
        #: armed for this link (set by the manager from the run config and
        #: the topology's per-kind gating; False keeps the pre-sleep
        #: policy behaviour bit-identical).
        self.can_sleep = False
        #: Most recent window's utilisation readings (telemetry ``policy``
        #: hook payload; NaN until the first window closes).
        self.last_lu = math.nan
        self.last_bu = math.nan
        #: Whether this window's step request was accepted by the
        #: transition engine (False for holds, deferred/rejected steps and
        #: ladder-end no-ops) — telemetry ``transition`` hook payload.
        self.last_step_accepted = False

    def reset(self, policy_config: PolicyConfig,
              transition_config: TransitionConfig,
              optical: OpticalPowerController | None) -> None:
        """Rebind this link's control stack for a warm rerun.

        The structural pieces (transport link, ladder, billing table)
        survive; the policy controller, transition engine and optical
        controller are rebuilt *fresh* from the new point's configs —
        construction is cheap and makes bit-identity with a freshly
        built :class:`PowerAwareLink` hold trivially.  ``can_sleep`` is
        re-armed by the manager afterwards (it owns the topology gate).
        """
        self.policy = LinkPolicyController(policy_config)
        self.engine = LinkTransitionEngine(
            self.link, self.ladder, transition_config,
            self.engine.service_time_fn,
        )
        self.engine.billing_listener = self._charge
        self.optical = optical
        self.energy_watt_cycles = 0.0
        self._last_charge = 0.0
        self.pending_up = False
        self.windows_observed = 0
        self.step_down_guard = None
        self.guard_holds = 0
        self.can_sleep = False
        self.last_lu = math.nan
        self.last_bu = math.nan
        self.last_step_accepted = False

    # -- energy accounting ----------------------------------------------------

    def _charge(self, now: float) -> None:
        """Bill the current level's power up to ``now``.

        A link parked in the OFF rung draws nothing: the elapsed time is
        consumed (so the integrator stays exact) but no energy accrues.
        """
        elapsed = now - self._last_charge
        if elapsed > 0.0:
            if self.engine.state is not TransitionState.OFF:
                self.energy_watt_cycles += (
                    self.level_powers[self.engine.billing_level] * elapsed
                )
            self._last_charge = now

    def current_power(self) -> float:
        """Instantaneous billed power, watts (zero while asleep)."""
        if self.engine.state is TransitionState.OFF:
            return 0.0
        return self.level_powers[self.engine.billing_level]

    def finalize(self, now: float) -> None:
        """Flush the energy integral at the end of a run."""
        self._charge(now)

    def average_power(self, total_cycles: float) -> float:
        """Mean power over a run of ``total_cycles``, watts."""
        return self.energy_watt_cycles / total_cycles

    # -- control --------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Progress any in-flight transition (cheap no-op guard)."""
        engine = self.engine
        if engine.in_transition and now >= engine.next_event:
            engine.advance(now)

    def on_window(self, start: float, end: float) -> int:
        """Window-boundary policy evaluation; returns the decision taken."""
        self.windows_observed += 1
        window = end - start
        # Pass the window end so serialisation time straddling the boundary
        # is carried into the next window (exact per-window Lu).
        busy = self.link.take_busy_time(end)
        pressure = self.link.take_pressure_time()
        if self.policy.config.pressure_aware_utilisation:
            busy = max(busy, pressure)
        lu = min(1.0, busy / window)
        buffers = self.downstream_buffer
        if buffers:
            bu = sum(
                b.mean_utilisation(start, end) for b in buffers
            ) / len(buffers)
        else:
            bu = 0.0
        self.last_lu = lu
        self.last_bu = bu
        self.last_step_accepted = False
        if self.engine.state is TransitionState.OFF:
            # Asleep in the LINK_OFF rung: wake on any sign of demand
            # (upstream pressure or occupied downstream buffers — an off
            # link serialises nothing, so busy time cannot appear), stay
            # dark otherwise.  The policy's window counters are not fed
            # while asleep.
            if pressure > 0.0 or bu > 0.0:
                self.last_step_accepted = self.engine.request_wake(end)
                return STEP_UP
            return HOLD
        level = self.engine.level
        if level > 0:
            down_ratio = self.ladder.rate(level) / self.ladder.rate(level - 1)
        else:
            down_ratio = 1.0
        decision = self.policy.observe(lu, bu, down_ratio)

        if self.optical is not None:
            self.optical.note_rate(self.engine.operating_rate)

        if self.pending_up:
            # Holding the electrical rate until the external light settles.
            target_rate = self.ladder.rate(
                self.ladder.clamp(self.engine.level + 1)
            )
            if self.optical.can_support(target_rate, end):
                self.pending_up = False
                self.last_step_accepted = \
                    self.engine.request_step(STEP_UP, end)
            return decision

        if decision == STEP_UP:
            if self.engine.level < self.ladder.top_level:
                target_rate = self.ladder.rate(self.engine.level + 1)
                if self.optical is not None and not self.optical.can_support(
                        target_rate, end):
                    self.optical.request_increase(target_rate, end)
                    self.pending_up = True
                else:
                    self.last_step_accepted = \
                        self.engine.request_step(STEP_UP, end)
        elif decision == STEP_DOWN:
            guard = self.step_down_guard
            if guard is not None and self.engine.level > 0 \
                    and not guard(self.engine.level - 1, end):
                # Margin guard: the lower level's projected BER violates
                # the reliability target — hold the line (and report HOLD
                # so transition hooks stay silent).
                self.guard_holds += 1
                decision = HOLD
            elif self.can_sleep and self.engine.level == 0 \
                    and busy == 0.0 and pressure == 0.0 and bu == 0.0:
                # LINK_OFF rung: already at the ladder bottom with a
                # completely idle window (no serialisation, no demand
                # pressure, empty downstream buffers) — power off.  The
                # guard is consulted with the sentinel level -1 so
                # reliability policies can veto sleeping too.
                if guard is not None and not guard(-1, end):
                    self.guard_holds += 1
                    decision = HOLD
                else:
                    self.last_step_accepted = \
                        self.engine.request_sleep(end)
            else:
                self.last_step_accepted = \
                    self.engine.request_step(STEP_DOWN, end)
        return decision

    # -- reporting ------------------------------------------------------------

    @property
    def level(self) -> int:
        """Committed ladder level."""
        return self.engine.level

    @property
    def bit_rate(self) -> float:
        """Committed bit rate, bits per second."""
        return self.ladder.rate(self.engine.level)

    def transition_counts(self) -> dict[str, int]:
        return {
            "up": self.engine.steps_up,
            "down": self.engine.steps_down,
        }
