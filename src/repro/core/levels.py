"""Bit-rate/voltage ladders and optical power bands (paper Section 3.2).

A power-aware link operates at one of a small number of discrete *levels*;
each level is a bit rate with an associated supply voltage (linear scaling,
1.8 V at 10 Gb/s).  The paper's default ladder has six levels from 5 to
10 Gb/s; the alternative 3.3-10 Gb/s ladder trades throughput for deeper
savings (Fig. 5(g)(h)).

For modulator-based systems, bit rates are additionally grouped into
*optical power bands* served by the external laser through per-fiber
attenuators: Plow (< 4 Gb/s), Pmid (4-6 Gb/s) and Phigh (6-10 Gb/s), with
Plow = 0.5 Pmid = 0.25 Phigh.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.units import require_positive


@dataclass(frozen=True)
class BitRateLadder:
    """An ascending tuple of selectable link bit rates."""

    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.rates:
            raise ConfigError("a ladder needs at least one rate")
        if list(self.rates) != sorted(self.rates):
            raise ConfigError(f"rates must be ascending, got {self.rates!r}")
        if len(set(self.rates)) != len(self.rates):
            raise ConfigError(f"rates must be distinct, got {self.rates!r}")
        for rate in self.rates:
            require_positive("rate", rate)

    @classmethod
    def linear(cls, min_rate: float, max_rate: float,
               num_levels: int) -> "BitRateLadder":
        """Evenly spaced levels from ``min_rate`` to ``max_rate`` inclusive."""
        require_positive("min_rate", min_rate)
        require_positive("max_rate", max_rate)
        if num_levels < 1:
            raise ConfigError(f"num_levels must be >= 1, got {num_levels!r}")
        if num_levels == 1:
            if min_rate != max_rate:
                raise ConfigError("a one-level ladder needs min == max")
            return cls(rates=(max_rate,))
        if min_rate >= max_rate:
            raise ConfigError("need min_rate < max_rate for multiple levels")
        step = (max_rate - min_rate) / (num_levels - 1)
        rates = [min_rate + i * step for i in range(num_levels - 1)]
        rates.append(max_rate)  # exact top rung, no accumulation error
        return cls(rates=tuple(rates))

    @classmethod
    def paper_default(cls) -> "BitRateLadder":
        """Six levels, 5-10 Gb/s (the paper's preferred configuration)."""
        return cls.linear(5e9, MAX_BIT_RATE, 6)

    @classmethod
    def paper_wide(cls) -> "BitRateLadder":
        """Six levels, 3.3-10 Gb/s (the deeper-savings alternative)."""
        return cls.linear(3.3e9, MAX_BIT_RATE, 6)

    @property
    def num_levels(self) -> int:
        return len(self.rates)

    @property
    def max_rate(self) -> float:
        return self.rates[-1]

    @property
    def min_rate(self) -> float:
        return self.rates[0]

    @property
    def top_level(self) -> int:
        return len(self.rates) - 1

    def rate(self, level: int) -> float:
        """Bit rate at a ladder level (0 = slowest)."""
        self._check_level(level)
        return self.rates[level]

    def vdd(self, level: int) -> float:
        """Supply voltage at a level under linear voltage/rate scaling."""
        return NOMINAL_VDD * self.rate(level) / self.max_rate

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer onto the ladder."""
        return min(max(level, 0), self.top_level)

    def level_for_rate(self, rate: float) -> int:
        """Lowest level whose rate is >= ``rate`` (top level if none)."""
        require_positive("rate", rate)
        index = bisect.bisect_left(self.rates, rate)
        return min(index, self.top_level)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self.rates):
            raise ConfigError(
                f"level must be in [0, {len(self.rates)}), got {level!r}"
            )


@dataclass(frozen=True)
class OpticalBands:
    """Quantised optical power bands for modulator-based links.

    ``upper_rates`` holds the exclusive upper bit-rate bound of every band
    except the last (which extends to the maximum rate);
    ``power_fractions`` holds each band's optical power relative to the
    highest band.
    """

    upper_rates: tuple[float, ...] = (4e9, 6e9)
    power_fractions: tuple[float, ...] = (0.25, 0.5, 1.0)

    def __post_init__(self) -> None:
        if len(self.power_fractions) != len(self.upper_rates) + 1:
            raise ConfigError(
                "power_fractions must have one more entry than upper_rates"
            )
        if list(self.upper_rates) != sorted(self.upper_rates):
            raise ConfigError("upper_rates must be ascending")
        if list(self.power_fractions) != sorted(self.power_fractions):
            raise ConfigError("power_fractions must be ascending")
        for fraction in self.power_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigError(
                    f"power fractions must lie in (0, 1], got {fraction!r}"
                )
        if self.power_fractions[-1] != 1.0:
            raise ConfigError("the highest band's power fraction must be 1.0")

    @classmethod
    def single(cls) -> "OpticalBands":
        """One fixed optical level (no external laser controller needed)."""
        return cls(upper_rates=(), power_fractions=(1.0,))

    @classmethod
    def paper_three_level(cls) -> "OpticalBands":
        """Plow < 4 Gb/s, Pmid 4-6 Gb/s, Phigh 6-10 Gb/s; halving steps."""
        return cls(upper_rates=(4e9, 6e9), power_fractions=(0.25, 0.5, 1.0))

    @property
    def num_bands(self) -> int:
        return len(self.power_fractions)

    @property
    def top_band(self) -> int:
        return self.num_bands - 1

    def band_for_rate(self, rate: float) -> int:
        """The band required to support a bit rate.

        Band boundaries are inclusive on the low side: exactly 4 Gb/s needs
        the middle band, exactly 6 Gb/s the high band (paper Section 3.2.2).
        """
        require_positive("rate", rate)
        return bisect.bisect_right(self.upper_rates, rate)

    def fraction(self, band: int) -> float:
        """Optical supply of a band as a fraction of the highest band."""
        if not 0 <= band < self.num_bands:
            raise ConfigError(
                f"band must be in [0, {self.num_bands}), got {band!r}"
            )
        return self.power_fractions[band]

    def attenuation_db(self, band: int) -> float:
        """VOA attenuation relative to the highest band, dB."""
        return -10.0 * math.log10(self.fraction(band))
