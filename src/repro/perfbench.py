"""Persistent performance benchmarking: the ``repro bench`` trajectory.

Every perf-focused PR records a machine-readable snapshot of simulator
throughput (``BENCH_<pr>.json``) so later work has a baseline to compare
against instead of a number in a commit message.  The snapshot holds
cycles/second at three canonical injection loads, peak RSS, a per-phase
time profile, and a calibration score for the machine that produced it.

Methodology notes (learned the hard way):

- **CPU time, not wall clock.**  Wall-clock throughput on a shared or
  thermally-throttled machine swings by 2x between runs; ``process_time``
  best-of-``repeats`` is stable to a few percent.  Speedup claims between
  snapshots should only ever be made on ``cycles_per_sec_cpu``.
- **Calibration.**  ``calibrate()`` scores a fixed arithmetic loop on the
  current interpreter/machine.  Comparing two snapshots from different
  machines, normalise each throughput by its calibration score first —
  that is what :func:`compare` does.
- **Determinism is asserted, not assumed.**  Each datapoint runs the same
  configuration ``repeats`` times and requires every repeat's
  :meth:`~repro.network.simulator.Simulator.summary` to be bit-identical
  before timing is trusted.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any

from repro.config import NetworkConfig, PowerAwareConfig, SimulationConfig
from repro.errors import ConfigError

#: Canonical injection loads (network-wide packets/cycle), shared with
#: ``benchmarks/bench_simulator.py``.
RATES: dict[str, float] = {
    "light": 0.02,
    "moderate": 0.25,
    "heavy": 0.8,
}

#: Traffic seed shared with the benchmark suite.
BENCH_SEED = 3

SCHEMA_VERSION = 1


def bench_config(topology: str = "mesh") -> SimulationConfig:
    """The benchmark network: 4x4 grid, 4 nodes/cluster, power-aware."""
    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=4,
                            topology=topology)
    return SimulationConfig(network=network, power=PowerAwareConfig(),
                            sample_interval=1000)


def make_bench_sim(rate: float, topology: str = "mesh"):
    """Build one benchmark simulator at ``rate`` (fresh every call)."""
    from repro.network.simulator import Simulator
    from repro.traffic.uniform import UniformRandomTraffic

    config = bench_config(topology)
    traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                   seed=BENCH_SEED)
    return Simulator(config, traffic)


def calibrate(rounds: int = 3) -> float:
    """Score this machine/interpreter with a fixed arithmetic loop.

    Returns loop iterations per CPU-second (best of ``rounds``).  The loop
    mixes integer and float work roughly like the simulator hot path does;
    the absolute number is meaningless, only ratios between machines are.
    """
    best = None
    for _ in range(rounds):
        t0 = time.process_time()
        acc = 0.0
        n = 1
        for i in range(200_000):
            n = (n * 29 + i) & 0xFFFF
            acc += n * 0.5
            if acc > 1e9:
                acc *= 0.5
        elapsed = time.process_time() - t0
        if elapsed > 0 and (best is None or elapsed < best):
            best = elapsed
    if best is None:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("calibration loop measured zero CPU time")
    return 200_000 / best


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        return int(usage // 1024)
    return int(usage)


def _phase_profile(rate: float, cycles: int,
                   topology: str = "mesh") -> dict[str, float]:
    """Fraction of simulated CPU time per phase (instrumented run).

    Uses a separate, shorter run: attaching the profiler switches the step
    loop to its instrumented form, which must never contaminate the timed
    datapoint runs.
    """
    from repro.engine import PhaseProfiler

    sim = make_bench_sim(rate, topology)
    profiler = PhaseProfiler(clock=time.process_time).attach(sim.hooks)
    sim.run(cycles)
    grand = profiler.total_seconds
    if grand <= 0:  # pragma: no cover - degenerate clock resolution
        return {}
    return {name: round(spent / grand, 4)
            for name, spent in sorted(profiler.seconds.items())}


@dataclass
class Datapoint:
    """One measured load point."""

    label: str
    injection_rate: float
    cycles: int
    repeats: int
    cycles_per_sec_cpu: float
    summary: dict[str, Any]
    phase_profile: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "repeats": self.repeats,
            "cycles_per_sec_cpu": round(self.cycles_per_sec_cpu, 1),
            "summary": self.summary,
            "phase_profile": self.phase_profile,
        }


def measure_rate(label: str, rate: float, cycles: int,
                 repeats: int = 3, profile: bool = True,
                 topology: str = "mesh") -> Datapoint:
    """Benchmark one injection load: best-of CPU time + determinism check.

    Raises :class:`~repro.errors.ConfigError` if the repeated runs are not
    bit-identical — a nondeterministic simulator makes every performance
    number meaningless, so the benchmark refuses to report one.
    """
    best: float | None = None
    reference: dict[str, Any] | None = None
    for _ in range(repeats):
        sim = make_bench_sim(rate, topology)
        t0 = time.process_time()
        sim.run(cycles)
        elapsed = time.process_time() - t0
        summary = sim.summary()
        if reference is None:
            reference = summary
        elif summary != reference:
            raise ConfigError(
                f"benchmark run at rate {rate} was not bit-identical "
                f"across repeats: {summary!r} != {reference!r}"
            )
        if elapsed > 0 and (best is None or elapsed < best):
            best = elapsed
    if best is None:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("benchmark run measured zero CPU time")
    assert reference is not None
    return Datapoint(
        label=label,
        injection_rate=rate,
        cycles=cycles,
        repeats=repeats,
        cycles_per_sec_cpu=cycles / best,
        summary=reference,
        phase_profile=_phase_profile(rate, max(cycles // 4, 500), topology)
        if profile else {},
    )


def run_benchmarks(quick: bool = False, pr: int | None = None,
                   profile: bool = True,
                   topology: str = "mesh") -> dict[str, Any]:
    """Run the full trajectory and return the snapshot document.

    ``topology`` selects the base substrate.  Non-mesh base runs prefix
    their datapoint labels with the topology name so :func:`compare`
    against a mesh baseline skips them instead of comparing unlike
    substrates.  A ``torus_moderate`` datapoint always rides along (unless
    the base already is torus), recording the table-driven torus hot path
    on the same trajectory as the mesh.
    """
    cycles = 1500 if quick else 4000
    repeats = 2 if quick else 3
    prefix = "" if topology == "mesh" else f"{topology}_"
    points = [
        measure_rate(f"{prefix}{label}", rate, cycles, repeats,
                     profile=profile, topology=topology)
        for label, rate in RATES.items()
    ]
    if topology != "torus":
        points.append(
            measure_rate("torus_moderate", RATES["moderate"], cycles,
                         repeats, profile=False, topology="torus")
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "quick": quick,
        "topology": topology,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "peak_rss_kb": _peak_rss_kb(),
        "datapoints": [point.to_json() for point in points],
    }


def write_snapshot(snapshot: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_snapshot(path: str) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read benchmark snapshot {path}: "
                          f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed benchmark snapshot {path}: "
                          f"{exc}") from exc
    if snapshot.get("schema_version") != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported benchmark snapshot schema "
            f"{snapshot.get('schema_version')!r} in {path}"
        )
    return snapshot


def compare(current: dict[str, Any], baseline: dict[str, Any],
            tolerance: float = 0.15) -> list[str]:
    """Compare two snapshots, calibration-normalised.

    Returns a list of human-readable regression descriptions (empty when
    the current snapshot is within ``tolerance`` of the baseline at every
    shared load point).  Throughputs are divided by each snapshot's
    calibration score first, so a slower CI machine does not read as a
    code regression.
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance!r}")
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    if not cur_cal or not base_cal:
        raise ConfigError("both snapshots need a calibration score")
    baseline_points = {
        point["label"]: point for point in baseline.get("datapoints", [])
    }
    regressions: list[str] = []
    for point in current.get("datapoints", []):
        label = point["label"]
        base = baseline_points.get(label)
        if base is None:
            continue
        cur_norm = point["cycles_per_sec_cpu"] / cur_cal
        base_norm = base["cycles_per_sec_cpu"] / base_cal
        ratio = cur_norm / base_norm
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{label}: normalised throughput fell to {ratio:.2f}x of "
                f"baseline ({point['cycles_per_sec_cpu']:,.0f} vs "
                f"{base['cycles_per_sec_cpu']:,.0f} cyc/s raw, calibration "
                f"{cur_cal:,.0f} vs {base_cal:,.0f})"
            )
    return regressions


def format_snapshot(snapshot: dict[str, Any]) -> str:
    """Human-readable one-screen rendering of a snapshot."""
    lines = [
        f"python {snapshot['python']} ({snapshot['implementation']}, "
        f"{snapshot['machine']}), calibration "
        f"{snapshot['calibration_ops_per_sec']:,.0f} ops/s, peak RSS "
        f"{snapshot.get('peak_rss_kb') or '?'} KiB",
    ]
    for point in snapshot["datapoints"]:
        lines.append(
            f"  {point['label']:>8} (rate {point['injection_rate']:.2f}): "
            f"{point['cycles_per_sec_cpu']:>12,.0f} cyc/s CPU over "
            f"{point['cycles']} cycles x {point['repeats']}"
        )
        profile = point.get("phase_profile")
        if profile:
            shares = ", ".join(
                f"{name} {share:.0%}" for name, share in profile.items()
            )
            lines.append(f"           phases: {shares}")
    return "\n".join(lines)
