"""Persistent performance benchmarking: the ``repro bench`` trajectory.

Every perf-focused PR records a machine-readable snapshot of simulator
throughput (``BENCH_<pr>.json``) so later work has a baseline to compare
against instead of a number in a commit message.  The snapshot holds
cycles/second at three canonical injection loads, peak RSS, a per-phase
time profile, and a calibration score for the machine that produced it.

Methodology notes (learned the hard way):

- **CPU time, not wall clock.**  Wall-clock throughput on a shared or
  thermally-throttled machine swings by 2x between runs; ``process_time``
  best-of-``repeats`` is stable to a few percent.  Speedup claims between
  snapshots should only ever be made on ``cycles_per_sec_cpu``.
- **Calibration.**  ``calibrate()`` scores a fixed arithmetic loop on the
  current interpreter/machine.  Comparing two snapshots from different
  machines, normalise each throughput by its calibration score first —
  that is what :func:`compare` does.
- **Determinism is asserted, not assumed.**  Each datapoint runs the same
  configuration ``repeats`` times and requires every repeat's
  :meth:`~repro.network.simulator.Simulator.summary` to be bit-identical
  before timing is trusted.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any

from repro.config import NetworkConfig, PowerAwareConfig, SimulationConfig
from repro.errors import ConfigError

#: Canonical injection loads (network-wide packets/cycle), shared with
#: ``benchmarks/bench_simulator.py``.
RATES: dict[str, float] = {
    "light": 0.02,
    "moderate": 0.25,
    "heavy": 0.8,
}

#: Traffic seed shared with the benchmark suite.
BENCH_SEED = 3

SCHEMA_VERSION = 1


def bench_config(topology: str = "mesh",
                 backend: str = "python") -> SimulationConfig:
    """The benchmark network: 4x4 grid, 4 nodes/cluster, power-aware."""
    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=4,
                            topology=topology)
    return SimulationConfig(network=network, power=PowerAwareConfig(),
                            sample_interval=1000, backend=backend)


def make_bench_sim(rate: float, topology: str = "mesh",
                   backend: str = "python"):
    """Build one benchmark simulator at ``rate`` (fresh every call)."""
    from repro.network.simulator import Simulator
    from repro.traffic.uniform import UniformRandomTraffic

    config = bench_config(topology, backend)
    traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                   seed=BENCH_SEED)
    return Simulator(config, traffic)


def _calibration_round() -> float:
    """One timed pass of the fixed arithmetic loop (CPU seconds)."""
    t0 = time.process_time()
    acc = 0.0
    n = 1
    for i in range(200_000):
        n = (n * 29 + i) & 0xFFFF
        acc += n * 0.5
        if acc > 1e9:
            acc *= 0.5
    return time.process_time() - t0


def calibrate(rounds: int = 5) -> float:
    """Score this machine/interpreter with a fixed arithmetic loop.

    Returns loop iterations per CPU-second, as the *median* of ``rounds``
    timed passes after one discarded warm-up pass.  Best-of was used
    through PR 7 but proved unstable across sessions (PR 6 had to
    re-baseline after a ~0.85x drift); the warm-up absorbs cold-start
    effects (allocator, frequency scaling kicking in) and the median is
    robust to a single descheduled round in either direction.  The loop
    mixes integer and float work roughly like the simulator hot path
    does; the absolute number is meaningless, only ratios between
    machines are.
    """
    if rounds < 1:
        raise ConfigError(f"rounds must be >= 1, got {rounds!r}")
    _calibration_round()  # warm-up, discarded
    timings = sorted(_calibration_round() for _ in range(rounds))
    mid = len(timings) // 2
    if len(timings) % 2:
        median = timings[mid]
    else:
        median = (timings[mid - 1] + timings[mid]) / 2.0
    if median <= 0:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("calibration loop measured zero CPU time")
    return 200_000 / median


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        return int(usage // 1024)
    return int(usage)


def _phase_profile(rate: float, cycles: int,
                   topology: str = "mesh",
                   backend: str = "python") -> dict[str, float]:
    """Fraction of simulated CPU time per phase (instrumented run).

    Uses a separate, shorter run: attaching the profiler switches the step
    loop to its instrumented form, which must never contaminate the timed
    datapoint runs.
    """
    from repro.engine import PhaseProfiler

    sim = make_bench_sim(rate, topology, backend)
    profiler = PhaseProfiler(clock=time.process_time).attach(sim.hooks)
    sim.run(cycles)
    grand = profiler.total_seconds
    if grand <= 0:  # pragma: no cover - degenerate clock resolution
        return {}
    return {name: round(spent / grand, 4)
            for name, spent in sorted(profiler.seconds.items())}


@dataclass
class Datapoint:
    """One measured load point."""

    label: str
    injection_rate: float
    cycles: int
    repeats: int
    cycles_per_sec_cpu: float
    summary: dict[str, Any]
    phase_profile: dict[str, float] = field(default_factory=dict)
    backend: str = "python"
    #: Calibration probe taken right beside this datapoint's timed runs,
    #: so :func:`compare` can normalise per point and
    #: :func:`calibration_warnings` can detect intra-session drift.
    calibration_ops_per_sec: float | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "repeats": self.repeats,
            "cycles_per_sec_cpu": round(self.cycles_per_sec_cpu, 1),
            "summary": self.summary,
            "phase_profile": self.phase_profile,
            "backend": self.backend,
            "calibration_ops_per_sec": (
                round(self.calibration_ops_per_sec, 1)
                if self.calibration_ops_per_sec else None
            ),
        }


def measure_rate(label: str, rate: float, cycles: int,
                 repeats: int = 3, profile: bool = True,
                 topology: str = "mesh",
                 backend: str = "python") -> Datapoint:
    """Benchmark one injection load: best-of CPU time + determinism check.

    Raises :class:`~repro.errors.ConfigError` if the repeated runs are not
    bit-identical — a nondeterministic simulator makes every performance
    number meaningless, so the benchmark refuses to report one.  A
    non-default ``backend`` additionally runs one reference simulation on
    the python backend and requires a bit-identical summary — the in-suite
    cross-backend identity gate.
    """
    best: float | None = None
    reference: dict[str, Any] | None = None
    for _ in range(repeats):
        sim = make_bench_sim(rate, topology, backend)
        t0 = time.process_time()
        sim.run(cycles)
        elapsed = time.process_time() - t0
        summary = sim.summary()
        if reference is None:
            reference = summary
        elif summary != reference:
            raise ConfigError(
                f"benchmark run at rate {rate} was not bit-identical "
                f"across repeats: {summary!r} != {reference!r}"
            )
        if elapsed > 0 and (best is None or elapsed < best):
            best = elapsed
    if best is None:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("benchmark run measured zero CPU time")
    assert reference is not None
    if backend != "python":
        ref_sim = make_bench_sim(rate, topology, "python")
        ref_sim.run(cycles)
        if ref_sim.summary() != reference:
            raise ConfigError(
                f"{backend} backend diverged from the python backend at "
                f"rate {rate} on {topology}: {reference!r} != "
                f"{ref_sim.summary()!r}"
            )
    return Datapoint(
        label=label,
        injection_rate=rate,
        cycles=cycles,
        repeats=repeats,
        cycles_per_sec_cpu=cycles / best,
        summary=reference,
        phase_profile=_phase_profile(rate, max(cycles // 4, 500), topology,
                                     backend)
        if profile else {},
        backend=backend,
        calibration_ops_per_sec=calibrate(rounds=3),
    )


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy present in CI
        return False
    return True


def run_benchmarks(quick: bool = False, pr: int | None = None,
                   profile: bool = True,
                   topology: str = "mesh",
                   backend: str = "python") -> dict[str, Any]:
    """Run the full trajectory and return the snapshot document.

    ``topology`` selects the base substrate.  Non-mesh base runs prefix
    their datapoint labels with the topology name so :func:`compare`
    against a mesh baseline skips them instead of comparing unlike
    substrates.  A ``torus_moderate`` datapoint always rides along (unless
    the base already is torus), recording the table-driven torus hot path
    on the same trajectory as the mesh.

    ``backend`` selects the stepping backend for the canonical points;
    non-python backends prefix every label with the backend name so they
    never compare against python-backend baselines.  A python-backend run
    additionally rides ``numpy_moderate``/``numpy_heavy`` points along
    (when numpy is importable), putting the cross-backend speedup — and,
    via :func:`measure_rate`'s reference run, the bit-identity gate — on
    the recorded trajectory.
    """
    cycles = 1500 if quick else 4000
    repeats = 2 if quick else 3
    prefix = "" if topology == "mesh" else f"{topology}_"
    if backend != "python":
        prefix = f"{backend}_{prefix}"
    points = [
        measure_rate(f"{prefix}{label}", rate, cycles, repeats,
                     profile=profile, topology=topology, backend=backend)
        for label, rate in RATES.items()
    ]
    if topology != "torus":
        points.append(
            measure_rate(f"{prefix}torus_moderate" if backend != "python"
                         else "torus_moderate",
                         RATES["moderate"], cycles,
                         repeats, profile=False, topology="torus",
                         backend=backend)
        )
    if backend == "python" and _numpy_available():
        for label in ("moderate", "heavy"):
            points.append(
                measure_rate(f"numpy_{label}", RATES[label], cycles,
                             repeats, profile=False, topology=topology,
                             backend="numpy")
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "quick": quick,
        "topology": topology,
        "backend": backend,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "peak_rss_kb": _peak_rss_kb(),
        "datapoints": [point.to_json() for point in points],
    }


def write_snapshot(snapshot: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_snapshot(path: str) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read benchmark snapshot {path}: "
                          f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed benchmark snapshot {path}: "
                          f"{exc}") from exc
    if snapshot.get("schema_version") != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported benchmark snapshot schema "
            f"{snapshot.get('schema_version')!r} in {path}"
        )
    return snapshot


def compare(current: dict[str, Any], baseline: dict[str, Any],
            tolerance: float = 0.15) -> list[str]:
    """Compare two snapshots, calibration-normalised.

    Returns a list of human-readable regression descriptions (empty when
    the current snapshot is within ``tolerance`` of the baseline at every
    shared load point).  Throughputs are divided by each snapshot's
    calibration score first, so a slower CI machine does not read as a
    code regression.

    Each side normalises by its *per-point* calibration probe when both
    snapshots recorded one for the label (probes taken beside the timed
    runs track intra-session machine drift); snapshots from before the
    probes (schema with point-level probes absent) fall back to the
    snapshot-level score.
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance!r}")
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    if not cur_cal or not base_cal:
        raise ConfigError("both snapshots need a calibration score")
    baseline_points = {
        point["label"]: point for point in baseline.get("datapoints", [])
    }
    regressions: list[str] = []
    for point in current.get("datapoints", []):
        label = point["label"]
        base = baseline_points.get(label)
        if base is None:
            continue
        cur_point_cal = point.get("calibration_ops_per_sec")
        base_point_cal = base.get("calibration_ops_per_sec")
        if cur_point_cal and base_point_cal:
            cur_norm = point["cycles_per_sec_cpu"] / cur_point_cal
            base_norm = base["cycles_per_sec_cpu"] / base_point_cal
        else:
            cur_norm = point["cycles_per_sec_cpu"] / cur_cal
            base_norm = base["cycles_per_sec_cpu"] / base_cal
        ratio = cur_norm / base_norm
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{label}: normalised throughput fell to {ratio:.2f}x of "
                f"baseline ({point['cycles_per_sec_cpu']:,.0f} vs "
                f"{base['cycles_per_sec_cpu']:,.0f} cyc/s raw, calibration "
                f"{cur_cal:,.0f} vs {base_cal:,.0f})"
            )
    return regressions


#: Per-point probes deviating more than this from their snapshot's score
#: mean the machine's speed moved *during* the benchmark session.
_DRIFT_TOLERANCE = 0.20


def calibration_warnings(current: dict[str, Any],
                         baseline: dict[str, Any]) -> list[str]:
    """Explicit drift diagnostics for a snapshot comparison.

    PR 6 had to re-baseline because the calibration score silently
    drifted ~0.85x between sessions on the same machine, turning the
    normalised compare into noise.  This surfaces that state instead:

    * a per-point probe far from its own snapshot's score means the
      machine's speed moved *during* a session (thermal throttling, a
      noisy neighbour) — every ratio involving that point is suspect;
    * two snapshots from an identical machine/interpreter whose scores
      still disagree materially mean the probe itself was unstable.

    Returns human-readable warnings (empty when calibration is clean);
    callers print them alongside :func:`compare` results — they flag the
    comparison as unreliable but are not regressions themselves.
    """
    warnings: list[str] = []
    for name, snapshot in (("current", current), ("baseline", baseline)):
        cal = snapshot.get("calibration_ops_per_sec")
        if not cal:
            continue
        for point in snapshot.get("datapoints", []):
            probe = point.get("calibration_ops_per_sec")
            if not probe:
                continue
            deviation = probe / cal
            if abs(deviation - 1.0) > _DRIFT_TOLERANCE:
                warnings.append(
                    f"calibration drifted during the {name} snapshot run: "
                    f"probe beside {point['label']!r} scored "
                    f"{probe:,.0f} ops/s vs the snapshot's {cal:,.0f} "
                    f"({deviation:.2f}x) — comparison unreliable"
                )
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    same_machine = all(
        current.get(key) == baseline.get(key)
        for key in ("machine", "implementation", "python")
    )
    if cur_cal and base_cal and same_machine:
        shift = cur_cal / base_cal
        if abs(shift - 1.0) > _DRIFT_TOLERANCE:
            warnings.append(
                f"calibration drifted between snapshots on an identical "
                f"machine/interpreter: {cur_cal:,.0f} vs {base_cal:,.0f} "
                f"ops/s ({shift:.2f}x) — comparison unreliable"
            )
    return warnings


def format_snapshot(snapshot: dict[str, Any]) -> str:
    """Human-readable one-screen rendering of a snapshot."""
    lines = [
        f"python {snapshot['python']} ({snapshot['implementation']}, "
        f"{snapshot['machine']}), calibration "
        f"{snapshot['calibration_ops_per_sec']:,.0f} ops/s, peak RSS "
        f"{snapshot.get('peak_rss_kb') or '?'} KiB",
    ]
    for point in snapshot["datapoints"]:
        lines.append(
            f"  {point['label']:>8} (rate {point['injection_rate']:.2f}): "
            f"{point['cycles_per_sec_cpu']:>12,.0f} cyc/s CPU over "
            f"{point['cycles']} cycles x {point['repeats']}"
        )
        profile = point.get("phase_profile")
        if profile:
            shares = ", ".join(
                f"{name} {share:.0%}" for name, share in profile.items()
            )
            lines.append(f"           phases: {shares}")
    return "\n".join(lines)
