"""Persistent performance benchmarking: the ``repro bench`` trajectory.

Every perf-focused PR records a machine-readable snapshot of simulator
throughput (``BENCH_<pr>.json``) so later work has a baseline to compare
against instead of a number in a commit message.  The snapshot holds
cycles/second at three canonical injection loads, peak RSS, a per-phase
time profile, and a calibration score for the machine that produced it.

Methodology notes (learned the hard way):

- **CPU time, not wall clock.**  Wall-clock throughput on a shared or
  thermally-throttled machine swings by 2x between runs; ``process_time``
  best-of-``repeats`` is stable to a few percent.  Speedup claims between
  snapshots should only ever be made on ``cycles_per_sec_cpu``.
- **Calibration.**  ``calibrate()`` scores a fixed arithmetic loop on the
  current interpreter/machine.  Comparing two snapshots from different
  machines, normalise each throughput by its calibration score first —
  that is what :func:`compare` does.
- **Determinism is asserted, not assumed.**  Each datapoint runs the same
  configuration ``repeats`` times and requires every repeat's
  :meth:`~repro.network.simulator.Simulator.summary` to be bit-identical
  before timing is trusted.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any

from repro.config import NetworkConfig, PowerAwareConfig, SimulationConfig
from repro.errors import ConfigError

#: Canonical injection loads (network-wide packets/cycle), shared with
#: ``benchmarks/bench_simulator.py``.
RATES: dict[str, float] = {
    "light": 0.02,
    "moderate": 0.25,
    "heavy": 0.8,
}

#: Traffic seed shared with the benchmark suite.
BENCH_SEED = 3

SCHEMA_VERSION = 1


def bench_config(topology: str = "mesh",
                 backend: str = "python") -> SimulationConfig:
    """The benchmark network: 4x4 grid, 4 nodes/cluster, power-aware."""
    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=4,
                            topology=topology)
    return SimulationConfig(network=network, power=PowerAwareConfig(),
                            sample_interval=1000, backend=backend)


def make_bench_sim(rate: float, topology: str = "mesh",
                   backend: str = "python"):
    """Build one benchmark simulator at ``rate`` (fresh every call)."""
    from repro.network.simulator import Simulator
    from repro.traffic.uniform import UniformRandomTraffic

    config = bench_config(topology, backend)
    traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                   seed=BENCH_SEED)
    return Simulator(config, traffic)


def _calibration_round() -> float:
    """One timed pass of the fixed arithmetic loop (CPU seconds)."""
    t0 = time.process_time()
    acc = 0.0
    n = 1
    for i in range(200_000):
        n = (n * 29 + i) & 0xFFFF
        acc += n * 0.5
        if acc > 1e9:
            acc *= 0.5
    return time.process_time() - t0


def calibrate(rounds: int = 5) -> float:
    """Score this machine/interpreter with a fixed arithmetic loop.

    Returns loop iterations per CPU-second, as the *median* of ``rounds``
    timed passes after one discarded warm-up pass.  Best-of was used
    through PR 7 but proved unstable across sessions (PR 6 had to
    re-baseline after a ~0.85x drift); the warm-up absorbs cold-start
    effects (allocator, frequency scaling kicking in) and the median is
    robust to a single descheduled round in either direction.  The loop
    mixes integer and float work roughly like the simulator hot path
    does; the absolute number is meaningless, only ratios between
    machines are.
    """
    if rounds < 1:
        raise ConfigError(f"rounds must be >= 1, got {rounds!r}")
    _calibration_round()  # warm-up, discarded
    timings = sorted(_calibration_round() for _ in range(rounds))
    mid = len(timings) // 2
    if len(timings) % 2:
        median = timings[mid]
    else:
        median = (timings[mid - 1] + timings[mid]) / 2.0
    if median <= 0:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("calibration loop measured zero CPU time")
    return 200_000 / median


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        return int(usage // 1024)
    return int(usage)


def _phase_profile(rate: float, cycles: int,
                   topology: str = "mesh",
                   backend: str = "python") -> dict[str, float]:
    """Fraction of simulated CPU time per phase (instrumented run).

    Uses a separate, shorter run: attaching the profiler switches the step
    loop to its instrumented form, which must never contaminate the timed
    datapoint runs.
    """
    from repro.engine import PhaseProfiler

    sim = make_bench_sim(rate, topology, backend)
    profiler = PhaseProfiler(clock=time.process_time).attach(sim.hooks)
    sim.run(cycles)
    grand = profiler.total_seconds
    if grand <= 0:  # pragma: no cover - degenerate clock resolution
        return {}
    return {name: round(spent / grand, 4)
            for name, spent in sorted(profiler.seconds.items())}


@dataclass
class Datapoint:
    """One measured load point."""

    label: str
    injection_rate: float
    cycles: int
    repeats: int
    cycles_per_sec_cpu: float
    summary: dict[str, Any]
    phase_profile: dict[str, float] = field(default_factory=dict)
    backend: str = "python"
    #: Calibration probe taken right beside this datapoint's timed runs,
    #: so :func:`compare` can normalise per point and
    #: :func:`calibration_warnings` can detect intra-session drift.
    calibration_ops_per_sec: float | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "repeats": self.repeats,
            "cycles_per_sec_cpu": round(self.cycles_per_sec_cpu, 1),
            "summary": self.summary,
            "phase_profile": self.phase_profile,
            "backend": self.backend,
            "calibration_ops_per_sec": (
                round(self.calibration_ops_per_sec, 1)
                if self.calibration_ops_per_sec else None
            ),
        }


def measure_rate(label: str, rate: float, cycles: int,
                 repeats: int = 3, profile: bool = True,
                 topology: str = "mesh",
                 backend: str = "python") -> Datapoint:
    """Benchmark one injection load: best-of CPU time + determinism check.

    Raises :class:`~repro.errors.ConfigError` if the repeated runs are not
    bit-identical — a nondeterministic simulator makes every performance
    number meaningless, so the benchmark refuses to report one.  A
    non-default ``backend`` additionally runs one reference simulation on
    the python backend and requires a bit-identical summary — the in-suite
    cross-backend identity gate.
    """
    best: float | None = None
    reference: dict[str, Any] | None = None
    for _ in range(repeats):
        sim = make_bench_sim(rate, topology, backend)
        t0 = time.process_time()
        sim.run(cycles)
        elapsed = time.process_time() - t0
        summary = sim.summary()
        if reference is None:
            reference = summary
        elif summary != reference:
            raise ConfigError(
                f"benchmark run at rate {rate} was not bit-identical "
                f"across repeats: {summary!r} != {reference!r}"
            )
        if elapsed > 0 and (best is None or elapsed < best):
            best = elapsed
    if best is None:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("benchmark run measured zero CPU time")
    assert reference is not None
    if backend != "python":
        ref_sim = make_bench_sim(rate, topology, "python")
        ref_sim.run(cycles)
        if ref_sim.summary() != reference:
            raise ConfigError(
                f"{backend} backend diverged from the python backend at "
                f"rate {rate} on {topology}: {reference!r} != "
                f"{ref_sim.summary()!r}"
            )
    return Datapoint(
        label=label,
        injection_rate=rate,
        cycles=cycles,
        repeats=repeats,
        cycles_per_sec_cpu=cycles / best,
        summary=reference,
        phase_profile=_phase_profile(rate, max(cycles // 4, 500), topology,
                                     backend)
        if profile else {},
        backend=backend,
        calibration_ops_per_sec=calibrate(rounds=3),
    )


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy present in CI
        return False
    return True


def run_benchmarks(quick: bool = False, pr: int | None = None,
                   profile: bool = True,
                   topology: str = "mesh",
                   backend: str = "python") -> dict[str, Any]:
    """Run the full trajectory and return the snapshot document.

    ``topology`` selects the base substrate.  Non-mesh base runs prefix
    their datapoint labels with the topology name so :func:`compare`
    against a mesh baseline skips them instead of comparing unlike
    substrates.  A ``torus_moderate`` datapoint always rides along (unless
    the base already is torus), recording the table-driven torus hot path
    on the same trajectory as the mesh.

    ``backend`` selects the stepping backend for the canonical points;
    non-python backends prefix every label with the backend name so they
    never compare against python-backend baselines.  A python-backend run
    additionally rides ``numpy_moderate``/``numpy_heavy`` points along
    (when numpy is importable), putting the cross-backend speedup — and,
    via :func:`measure_rate`'s reference run, the bit-identity gate — on
    the recorded trajectory.
    """
    cycles = 1500 if quick else 4000
    repeats = 2 if quick else 3
    prefix = "" if topology == "mesh" else f"{topology}_"
    if backend != "python":
        prefix = f"{backend}_{prefix}"
    points = [
        measure_rate(f"{prefix}{label}", rate, cycles, repeats,
                     profile=profile, topology=topology, backend=backend)
        for label, rate in RATES.items()
    ]
    if topology != "torus":
        points.append(
            measure_rate(f"{prefix}torus_moderate" if backend != "python"
                         else "torus_moderate",
                         RATES["moderate"], cycles,
                         repeats, profile=profile, topology="torus",
                         backend=backend)
        )
    if backend == "python" and _numpy_available():
        for label in ("moderate", "heavy"):
            points.append(
                measure_rate(f"numpy_{label}", RATES[label], cycles,
                             repeats, profile=profile, topology=topology,
                             backend="numpy")
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "quick": quick,
        "topology": topology,
        "backend": backend,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "peak_rss_kb": _peak_rss_kb(),
        "datapoints": [point.to_json() for point in points],
    }


# -- sweep throughput benches -------------------------------------------------
#
# ``repro bench --sweep``: points/sec through the resilient executor, warm
# (construction-cached, reset-in-place) vs cold (fresh simulator per
# point).  Short points are construction-dominated — the warm-worker
# machinery's target; long points are run-dominated and document honestly
# how the benefit amortises away.  Variant parameters are identical in
# quick and full mode (the sweeps are cheap; keeping them fixed is what
# makes points/sec comparable across snapshots — unlike cycles/sec,
# points/sec is *not* invariant to the per-point cycle budget).

#: Sweep-bench variants: points, cycles/point, warmup, injection rates.
SWEEP_VARIANTS: dict[str, dict[str, Any]] = {
    "short": {"points": 24, "cycles": 200, "warmup": 50,
              "rates": (0.02, 0.05)},
    "long": {"points": 6, "cycles": 2000, "warmup": 200,
             "rates": (0.02, 0.25)},
}

#: Grid for the sweep benches: bigger than the single-run bench network,
#: so construction cost is realistic for a design-space study.
SWEEP_BENCH_WIDTH = 6
SWEEP_BENCH_NODES = 4


def sweep_bench_points(variant: str) -> list[Any]:
    """The canonical sweep for one variant (fresh point objects)."""
    from repro.experiments.configs import ExperimentScale
    from repro.experiments.fig5 import uniform_factory
    from repro.experiments.runner import SweepPoint

    try:
        spec = SWEEP_VARIANTS[variant]
    except KeyError:
        raise ConfigError(
            f"unknown sweep variant {variant!r}; known: "
            f"{', '.join(sorted(SWEEP_VARIANTS))}"
        ) from None
    network = NetworkConfig(mesh_width=SWEEP_BENCH_WIDTH,
                            mesh_height=SWEEP_BENCH_WIDTH,
                            nodes_per_cluster=SWEEP_BENCH_NODES)
    scale = ExperimentScale(
        name=f"bench-sweep-{variant}", network=network,
        run_cycles=spec["cycles"], slow_constant_divisor=25,
        warmup_cycles=spec["warmup"], sample_interval=100,
        policy_window_cycles=100,
    )
    rates = spec["rates"]
    return [
        SweepPoint(label=f"{variant}-{index}", scale=scale,
                   power=PowerAwareConfig(),
                   traffic_factory=uniform_factory(rates[index % len(rates)]),
                   seed=BENCH_SEED + index, cycles=spec["cycles"])
        for index in range(spec["points"])
    ]


def _result_fingerprint(results: list) -> list[str]:
    """Bit-identity fingerprint of a sweep trajectory.

    ``RunResult == RunResult`` is False whenever a latency field is NaN
    (too few delivered packets to sample), even for byte-identical runs —
    except when both sides happen to hold the *same* float object, which
    same-process results do (the ``math.nan`` singleton) and unpickled
    parallel results do not.  ``repr`` round-trips every float and
    renders NaN stably, so comparing reprs is the NaN-proof equivalent
    of the intended bit-identity check.
    """
    return [repr(result) for result in results]


def measure_sweep(variant: str, *, warm: bool, jobs: int = 1,
                  repeats: int = 2) -> dict[str, Any]:
    """Benchmark one sweep variant: points/sec + determinism gate.

    Serial sweeps time CPU (``process_time``, best-of-``repeats``) like
    every other datapoint; parallel sweeps must time wall clock (child
    CPU is invisible to the parent) and say so in ``clock``.  Repeats
    must be bit-identical or the measurement is refused.  A warm serial
    sweep gets one untimed priming pass so the timed passes measure the
    steady state (the state a long sweep spends its life in); the cache
    then stays warm across repeats.  Returns the sweep datapoint dict
    plus the run results under ``"results"`` (popped before snapshotting)
    so callers can gate warm-vs-cold identity.
    """
    from repro.experiments.executor import ExecutionPlan, execute_sweep
    from repro.experiments.warm import clear_cache

    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs!r}")
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats!r}")
    points = sweep_bench_points(variant)
    plan = ExecutionPlan(warm=warm)
    clock = time.process_time if jobs == 1 else time.perf_counter
    if jobs == 1:
        clear_cache()
        if warm:
            execute_sweep(points, max_workers=1, plan=plan)  # priming pass
    best: float | None = None
    reference = None
    for _ in range(repeats):
        t0 = clock()
        outcome = execute_sweep(points, max_workers=jobs, plan=plan)
        elapsed = clock() - t0
        if not outcome.complete:
            raise ConfigError(
                f"sweep benchmark {variant!r} lost points: "
                f"{outcome.report.summary()}"
            )
        if reference is None:
            reference = outcome.results
        elif _result_fingerprint(outcome.results) != _result_fingerprint(
                reference):
            raise ConfigError(
                f"sweep benchmark {variant!r} was not bit-identical "
                f"across repeats (warm={warm}, jobs={jobs})"
            )
        if elapsed > 0 and (best is None or elapsed < best):
            best = elapsed
    if best is None:  # pragma: no cover - degenerate clock resolution
        raise ConfigError("sweep benchmark measured zero time")
    spec = SWEEP_VARIANTS[variant]
    mode = "warm" if warm else "cold"
    suffix = "" if jobs == 1 else f"_j{jobs}"
    return {
        "label": f"sweep_{variant}_{mode}{suffix}",
        "variant": variant,
        "points": spec["points"],
        "cycles_per_point": spec["cycles"],
        "warm": warm,
        "jobs": jobs,
        "clock": "cpu" if jobs == 1 else "wall",
        "points_per_sec": round(spec["points"] / best, 2),
        "calibration_ops_per_sec": round(calibrate(rounds=3), 1),
        "results": reference,
    }


def run_sweep_benchmarks(quick: bool = False,
                         jobs: tuple[int, ...] = (2,)) -> dict[str, Any]:
    """The ``--sweep`` family: warm vs cold points/sec, serial and parallel.

    Quick mode runs only the short-point serial pair (the pair the
    warm-speedup gate reads); full mode adds the long-point pair and a
    warm parallel sweep per entry of ``jobs``.  Warm and cold results
    are asserted bit-identical — the warm-worker identity contract,
    enforced on the recorded trajectory itself.  Returns the keys to
    merge into a benchmark snapshot: ``sweep_datapoints`` and
    ``sweep_speedups`` (per-variant warm/cold serial points/sec ratio —
    same session and clock, so no calibration normalisation is needed).
    """
    variants = ["short"] if quick else list(SWEEP_VARIANTS)
    datapoints: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    for variant in variants:
        cold = measure_sweep(variant, warm=False)
        warm = measure_sweep(variant, warm=True)
        if (_result_fingerprint(warm.pop("results"))
                != _result_fingerprint(cold.pop("results"))):
            raise ConfigError(
                f"warm sweep {variant!r} diverged from cold execution — "
                "the construction cache broke bit-identity"
            )
        datapoints.extend([cold, warm])
        speedups[variant] = round(
            warm["points_per_sec"] / cold["points_per_sec"], 3)
    if not quick:
        for n in jobs:
            parallel = measure_sweep("short", warm=True, jobs=n)
            parallel.pop("results")
            datapoints.append(parallel)
    return {"sweep_datapoints": datapoints, "sweep_speedups": speedups}


def sweep_snapshot(quick: bool = False, pr: int | None = None,
                   jobs: tuple[int, ...] = (2,)) -> dict[str, Any]:
    """A sweep-only snapshot document (``repro bench --sweep-only``).

    Same envelope as :func:`run_benchmarks` — schema version, machine
    identity, calibration — with an empty single-run ``datapoints`` list,
    so :func:`compare` passes vacuously and :func:`compare_sweeps` does
    the work.  The fast CI smoke uses this to gate sweep throughput
    without re-running the single-run trajectory.
    """
    snapshot: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "quick": quick,
        "topology": "mesh",
        "backend": "python",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "peak_rss_kb": _peak_rss_kb(),
        "datapoints": [],
    }
    snapshot.update(run_sweep_benchmarks(quick=quick, jobs=jobs))
    return snapshot


def compare_sweeps(current: dict[str, Any], baseline: dict[str, Any],
                   tolerance: float = 0.15) -> list[str]:
    """Compare two snapshots' sweep sections, calibration-normalised.

    Labels compare only when their geometry matches (same point count,
    cycle budget, job count and clock) — points/sec is meaningless
    across different sweep shapes.  Parallel (wall-clock) sweeps are
    normalised too: the calibration probe runs in the supervisor, which
    shares the machine with the workers.  Snapshots without sweep
    sections compare vacuously (the standard gate covers them).
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance!r}")
    baseline_points = {
        point["label"]: point
        for point in baseline.get("sweep_datapoints", [])
    }
    regressions: list[str] = []
    for point in current.get("sweep_datapoints", []):
        base = baseline_points.get(point["label"])
        if base is None:
            continue
        if any(point.get(k) != base.get(k)
               for k in ("points", "cycles_per_point", "jobs", "clock")):
            continue
        cur_cal = point.get("calibration_ops_per_sec") \
            or current.get("calibration_ops_per_sec")
        base_cal = base.get("calibration_ops_per_sec") \
            or baseline.get("calibration_ops_per_sec")
        if not cur_cal or not base_cal:
            raise ConfigError("both sweep snapshots need calibration scores")
        ratio = (point["points_per_sec"] / cur_cal) \
            / (base["points_per_sec"] / base_cal)
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{point['label']}: normalised sweep throughput fell to "
                f"{ratio:.2f}x of baseline ({point['points_per_sec']:,.1f} "
                f"vs {base['points_per_sec']:,.1f} points/s raw)"
            )
    return regressions


def format_sweeps(snapshot: dict[str, Any]) -> str:
    """Human-readable rendering of a snapshot's sweep section."""
    lines = []
    for point in snapshot.get("sweep_datapoints", []):
        lines.append(
            f"  {point['label']:>18}: {point['points_per_sec']:>8,.1f} "
            f"points/s ({point['clock']}) over {point['points']} points x "
            f"{point['cycles_per_point']} cycles"
        )
    for variant, speedup in snapshot.get("sweep_speedups", {}).items():
        lines.append(f"  warm speedup ({variant}, serial): {speedup:.2f}x")
    return "\n".join(lines)


def write_snapshot(snapshot: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_snapshot(path: str) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read benchmark snapshot {path}: "
                          f"{exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed benchmark snapshot {path}: "
                          f"{exc}") from exc
    if snapshot.get("schema_version") != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported benchmark snapshot schema "
            f"{snapshot.get('schema_version')!r} in {path}"
        )
    return snapshot


def compare(current: dict[str, Any], baseline: dict[str, Any],
            tolerance: float = 0.15) -> list[str]:
    """Compare two snapshots, calibration-normalised.

    Returns a list of human-readable regression descriptions (empty when
    the current snapshot is within ``tolerance`` of the baseline at every
    shared load point).  Throughputs are divided by each snapshot's
    calibration score first, so a slower CI machine does not read as a
    code regression.

    Each side normalises by its *per-point* calibration probe when both
    snapshots recorded one for the label (probes taken beside the timed
    runs track intra-session machine drift); snapshots from before the
    probes (schema with point-level probes absent) fall back to the
    snapshot-level score.
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance!r}")
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    if not cur_cal or not base_cal:
        raise ConfigError("both snapshots need a calibration score")
    baseline_points = {
        point["label"]: point for point in baseline.get("datapoints", [])
    }
    regressions: list[str] = []
    for point in current.get("datapoints", []):
        label = point["label"]
        base = baseline_points.get(label)
        if base is None:
            continue
        cur_point_cal = point.get("calibration_ops_per_sec")
        base_point_cal = base.get("calibration_ops_per_sec")
        if cur_point_cal and base_point_cal:
            cur_norm = point["cycles_per_sec_cpu"] / cur_point_cal
            base_norm = base["cycles_per_sec_cpu"] / base_point_cal
        else:
            cur_norm = point["cycles_per_sec_cpu"] / cur_cal
            base_norm = base["cycles_per_sec_cpu"] / base_cal
        ratio = cur_norm / base_norm
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{label}: normalised throughput fell to {ratio:.2f}x of "
                f"baseline ({point['cycles_per_sec_cpu']:,.0f} vs "
                f"{base['cycles_per_sec_cpu']:,.0f} cyc/s raw, calibration "
                f"{cur_cal:,.0f} vs {base_cal:,.0f})"
            )
    return regressions


#: Per-point probes deviating more than this from their snapshot's score
#: mean the machine's speed moved *during* the benchmark session.
_DRIFT_TOLERANCE = 0.20


def calibration_warnings(current: dict[str, Any],
                         baseline: dict[str, Any]) -> list[str]:
    """Explicit drift diagnostics for a snapshot comparison.

    PR 6 had to re-baseline because the calibration score silently
    drifted ~0.85x between sessions on the same machine, turning the
    normalised compare into noise.  This surfaces that state instead:

    * a per-point probe far from its own snapshot's score means the
      machine's speed moved *during* a session (thermal throttling, a
      noisy neighbour) — every ratio involving that point is suspect;
    * two snapshots from an identical machine/interpreter whose scores
      still disagree materially mean the probe itself was unstable.

    Returns human-readable warnings (empty when calibration is clean);
    callers print them alongside :func:`compare` results — they flag the
    comparison as unreliable but are not regressions themselves.
    """
    warnings: list[str] = []
    for name, snapshot in (("current", current), ("baseline", baseline)):
        cal = snapshot.get("calibration_ops_per_sec")
        if not cal:
            continue
        for point in snapshot.get("datapoints", []):
            probe = point.get("calibration_ops_per_sec")
            if not probe:
                continue
            deviation = probe / cal
            if abs(deviation - 1.0) > _DRIFT_TOLERANCE:
                warnings.append(
                    f"calibration drifted during the {name} snapshot run: "
                    f"probe beside {point['label']!r} scored "
                    f"{probe:,.0f} ops/s vs the snapshot's {cal:,.0f} "
                    f"({deviation:.2f}x) — comparison unreliable"
                )
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    same_machine = all(
        current.get(key) == baseline.get(key)
        for key in ("machine", "implementation", "python")
    )
    if cur_cal and base_cal and same_machine:
        shift = cur_cal / base_cal
        if abs(shift - 1.0) > _DRIFT_TOLERANCE:
            warnings.append(
                f"calibration drifted between snapshots on an identical "
                f"machine/interpreter: {cur_cal:,.0f} vs {base_cal:,.0f} "
                f"ops/s ({shift:.2f}x) — comparison unreliable"
            )
    return warnings


def format_snapshot(snapshot: dict[str, Any]) -> str:
    """Human-readable one-screen rendering of a snapshot."""
    lines = [
        f"python {snapshot['python']} ({snapshot['implementation']}, "
        f"{snapshot['machine']}), calibration "
        f"{snapshot['calibration_ops_per_sec']:,.0f} ops/s, peak RSS "
        f"{snapshot.get('peak_rss_kb') or '?'} KiB",
    ]
    for point in snapshot["datapoints"]:
        lines.append(
            f"  {point['label']:>8} (rate {point['injection_rate']:.2f}): "
            f"{point['cycles_per_sec_cpu']:>12,.0f} cyc/s CPU over "
            f"{point['cycles']} cycles x {point['repeats']}"
        )
        profile = point.get("phase_profile")
        if profile:
            shares = ", ".join(
                f"{name} {share:.0%}" for name, share in profile.items()
            )
            lines.append(f"           phases: {shares}")
    return "\n".join(lines)
