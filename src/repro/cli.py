"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Simulate one configuration and print the summary (optionally next to
    the non-power-aware baseline).
``table2``
    Print the link component power budget and the paper cross-check.
``trace``
    Synthesise a SPLASH2-like traffic trace to a file.
``report``
    Regenerate EXPERIMENTS.md (delegates to
    :mod:`repro.experiments.report`).
``bench``
    Run the persistent performance trajectory and write/compare a
    ``BENCH_<pr>.json`` snapshot (see :mod:`repro.perfbench` and
    docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import MODULATOR, VCSEL
from repro.errors import ConfigError
from repro.experiments.configs import (
    get_scale,
    power_config,
    reference_rates,
    scale_with_topology,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.fig6 import hotspot_factory
from repro.units import gbps
from repro.experiments.runner import run_pair, run_simulation
from repro.metrics.ascii import format_table, sparkline


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="simulate one configuration and print the summary")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--topology", default="mesh", metavar="NAME",
                        help="network topology (mesh, torus, cmesh, line; "
                             "default: mesh)")
    parser.add_argument("--traffic", default="uniform",
                        choices=["uniform", "hotspot", "splash"])
    parser.add_argument("--rate", type=float, default=None,
                        help="packets/cycle for uniform traffic "
                             "(default: the scale's 'light' reference)")
    parser.add_argument("--benchmark", default="fft",
                        choices=["fft", "lu", "radix"],
                        help="trace for --traffic splash")
    parser.add_argument("--technology", default=VCSEL,
                        choices=[VCSEL, MODULATOR])
    parser.add_argument("--optical-levels", type=int, default=1,
                        choices=[1, 3])
    parser.add_argument("--min-rate-gbps", type=float, default=5.0)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--backend", default="python",
                        choices=["python", "numpy"],
                        help="route-phase stepping backend; 'numpy' uses "
                             "the batched gate (bit-identical results; "
                             "see docs/performance.md)")
    parser.add_argument("--baseline", action="store_true",
                        help="also run the non-power-aware network and "
                             "print normalised ratios")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall-time attribution after "
                             "the run (not combinable with --baseline)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="enable fault injection, e.g. "
                             "'rx_uw=13,retries=8,fail=16@2000' "
                             "(see docs/reliability.md)")
    parser.add_argument("--link-off", action="store_true",
                        help="arm the LINK_OFF sleep rung: idle links at "
                             "the ladder bottom power off entirely and pay "
                             "a wake penalty on new demand")
    parser.add_argument("--validate", action="store_true",
                        help="validate the wired topology before running")
    parser.add_argument("--trace", default=None, metavar="OUT.JSONL",
                        help="record a run trace to a JSONL file "
                             "(see docs/telemetry.md; not combinable "
                             "with --baseline)")
    parser.add_argument("--trace-kinds", default="all", metavar="K[,K...]",
                        help="event kinds to record (default: all); see "
                             "docs/telemetry.md for the schema")
    parser.add_argument("--trace-links", default=None, metavar="ID[,ID...]",
                        help="record only these link ids "
                             "(default: every link)")
    parser.add_argument("--trace-sample-every", type=int, default=1,
                        metavar="N",
                        help="record every Nth delivered packet "
                             "(default: 1 = all)")


def _add_trace_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "trace", help="traffic-trace synthesis and run-trace utilities")
    commands = parser.add_subparsers(dest="trace_command", required=True)

    synth = commands.add_parser(
        "synth", help="synthesise a SPLASH2-like traffic trace file")
    synth.add_argument("benchmark", choices=["fft", "lu", "radix"])
    synth.add_argument("--nodes", type=int, default=64)
    synth.add_argument("--duration", type=int, default=100_000)
    synth.add_argument("--intensity", type=float, default=1.0)
    synth.add_argument("--seed", type=int, default=1)
    synth.add_argument("--out", default=None,
                       help="output path (default: <benchmark>.trace)")

    convert = commands.add_parser(
        "convert", help="convert a run trace (JSONL) for other tools")
    convert.add_argument("input", help="JSONL trace from 'repro run --trace'")
    convert.add_argument("--format", default="chrome",
                         choices=["chrome", "csv"],
                         help="chrome = Perfetto-loadable trace-event "
                              "JSON; csv = one kind as a time series")
    convert.add_argument("--kind", default="power",
                         help="event kind for --format csv "
                              "(default: power)")
    convert.add_argument("--out", default=None,
                         help="output path (default: input + "
                              "'.json'/'.csv')")

    summarize = commands.add_parser(
        "summarize", help="print per-kind counts and spans of a run trace")
    summarize.add_argument("input",
                           help="JSONL trace from 'repro run --trace'")


def _add_sweep_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "sweep", help="run one of the Fig. 5 design-space sweeps")
    parser.add_argument("kind",
                        choices=["window", "threshold", "ablation", "faults"])
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--topology", default="mesh", metavar="NAME",
                        help="network topology for every sweep point "
                             "(default: mesh)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep points "
                             "(0 = one per CPU; results are identical "
                             "whatever the job count)")
    parser.add_argument("--journal", default=None, metavar="DB",
                        help="journal completed points to this SQLite file "
                             "so an interrupted sweep can resume "
                             "bit-identically (see docs/execution.md)")
    parser.add_argument("--resume", action="store_true",
                        help="require --journal to already exist and load "
                             "its completed points instead of re-running")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock budget per attempt "
                             "(default: unbounded)")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts per failed/timed-out/crashed "
                             "point, with exponential backoff (default: 0)")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base retry backoff; attempt n waits "
                             "base * 2^(n-1) seconds (default: 0.5)")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast on the first exhausted point "
                             "instead of reporting partial results")
    parser.add_argument("--exec-trace", default=None, metavar="OUT.JSONL",
                        help="record executor lifecycle events (point "
                             "done/cached/failed, retries, crashes) to a "
                             "JSONL trace file")


def _add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench", help="run the performance benchmark trajectory")
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs / fewer repeats (CI gate); "
                             "calibration-normalised comparison still holds")
    parser.add_argument("--out", default=None, metavar="OUT.json",
                        help="write the snapshot to this path "
                             "(default: BENCH_<pr>.json with --pr, else "
                             "print only)")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number recorded in the snapshot (and the "
                             "default output filename)")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="compare against a committed snapshot; exits "
                             "1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed normalised throughput drop vs the "
                             "baseline (default: 0.15)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the per-phase profile runs")
    parser.add_argument("--topology", default="mesh", metavar="NAME",
                        help="base topology for the benchmark network "
                             "(default: mesh)")
    parser.add_argument("--backend", default="python",
                        choices=["python", "numpy"],
                        help="route-phase backend for the benchmark runs "
                             "(default: python; the python run also "
                             "appends numpy rider points when numpy is "
                             "importable)")
    parser.add_argument("--sweep", action="store_true",
                        help="also run the sweep-throughput family "
                             "(points/sec, warm vs cold workers)")
    parser.add_argument("--sweep-only", action="store_true",
                        help="run only the sweep-throughput family "
                             "(skips the single-run trajectory; the "
                             "fast CI smoke)")
    parser.add_argument("--jobs", type=int, nargs="*", default=[2],
                        metavar="N",
                        help="worker counts for the parallel warm sweep "
                             "datapoints (full mode only; default: 2)")
    parser.add_argument("--sweep-floor", type=float, default=None,
                        metavar="RATIO",
                        help="fail unless the short-point serial warm "
                             "speedup reaches RATIO (e.g. 1.2)")


def _add_check_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "check", help="run the project static-analysis pass "
                      "(determinism/units/hooks/hot-path/"
                      "stateful-invariant rules)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to check "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--rules", metavar="ID[,ID...]", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--root", default=None,
                        help="directory findings are reported relative to")
    parser.add_argument("--output", default=None, metavar="REPORT",
                        help="also write the report to this file")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="report only findings in files changed vs. "
                             "the git ref BASE (default HEAD)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware opto-electronic networked systems "
                    "(HPCA-11 2005 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    subparsers.add_parser("table2", help="print the Table 2 power budget")
    _add_trace_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_check_parser(subparsers)
    report = subparsers.add_parser(
        "report", help="regenerate EXPERIMENTS.md (slow)")
    report.add_argument("--scale", default="bench",
                        choices=["smoke", "bench", "paper"])
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument("--seed", type=int, default=1)
    return parser


def _command_run(args) -> int:
    if args.profile and args.baseline:
        print("error: --profile cannot be combined with --baseline",
              file=sys.stderr)
        return 2
    if args.trace is not None and args.baseline:
        print("error: --trace cannot be combined with --baseline "
              "(a single trace file cannot hold two runs)",
              file=sys.stderr)
        return 2
    if args.backend != "python" and args.baseline:
        print("error: --backend numpy cannot be combined with --baseline "
              "(the paired-run harness always uses the python backend)",
              file=sys.stderr)
        return 2
    scale = scale_with_topology(get_scale(args.scale), args.topology)
    if args.traffic == "uniform":
        rate = args.rate if args.rate is not None else \
            reference_rates(scale.network)["light"]
        factory = uniform_factory(rate)
        workload = f"uniform @ {rate:.2f} pkt/cyc"
    elif args.traffic == "hotspot":
        factory = hotspot_factory(scale)
        workload = "time-varying hot-spot"
    else:
        from repro.experiments.fig7 import splash_factory

        factory = splash_factory(args.benchmark, scale)
        workload = f"splash/{args.benchmark} trace"
    power = power_config(
        scale, technology=args.technology,
        min_bit_rate=gbps(args.min_rate_gbps),
        optical_levels=args.optical_levels,
        link_off=args.link_off,
    )
    faults = None
    if args.faults is not None:
        from repro.reliability.config import parse_fault_spec

        faults = parse_fault_spec(args.faults)
    telemetry = None
    if args.trace is not None:
        from repro.telemetry.config import TelemetryConfig, parse_kinds

        link_ids = None
        if args.trace_links is not None:
            link_ids = tuple(
                int(part) for part in args.trace_links.split(",") if part
            )
        telemetry = TelemetryConfig(
            kinds=parse_kinds(args.trace_kinds),
            link_ids=link_ids,
            packet_sample_every=args.trace_sample_every,
            path=args.trace,
        )
    print(f"{workload} on {scale.network.mesh_width}x"
          f"{scale.network.mesh_height}x{scale.network.nodes_per_cluster} "
          f"{scale.network.topology}, {args.technology} links ...")
    if args.baseline:
        aware, baseline, normalised = run_pair(
            scale, power, factory, label="cli", seed=args.seed,
            cycles=args.cycles, faults=faults)
        rows = [
            ["mean latency (cyc)", f"{baseline.mean_latency:.1f}",
             f"{aware.mean_latency:.1f}"],
            ["relative power", f"{baseline.relative_power:.3f}",
             f"{aware.relative_power:.3f}"],
            ["packets delivered", baseline.packets_delivered,
             aware.packets_delivered],
        ]
        print(format_table(["metric", "baseline", "power-aware"], rows))
        print(f"\nlatency ratio {normalised.latency_ratio:.2f}, "
              f"power ratio {normalised.power_ratio:.2f}, "
              f"PLP {normalised.power_latency_product:.2f}")
    elif args.profile:
        from repro.engine import PhaseProfiler
        from repro.experiments.runner import build_simulator, collect_result

        sim = build_simulator(
            scale.network, power, factory, seed=args.seed,
            warmup_cycles=scale.warmup_cycles,
            sample_interval=scale.sample_interval,
            faults=faults, validate=args.validate, telemetry=telemetry,
            backend=args.backend,
        )
        profiler = PhaseProfiler().attach(sim.hooks)
        try:
            sim.run(args.cycles if args.cycles is not None
                    else scale.run_cycles)
            _print_result(collect_result(sim, "cli"))
        finally:
            # Close the sink even when the run raises, mirroring
            # run_simulation: an unclosed JSONL sink truncates the trace.
            if sim.telemetry is not None:
                sim.telemetry.close()
        print("\nwall-time by phase:")
        print(profiler.report())
    else:
        result = run_simulation(scale, power, factory, label="cli",
                                seed=args.seed, cycles=args.cycles,
                                faults=faults, validate=args.validate,
                                telemetry=telemetry, backend=args.backend)
        _print_result(result)
    if args.trace is not None:
        print(f"\ntrace written to {args.trace}")
    return 0


def _print_result(result) -> None:
    """Print one run's summary table and power sparkline."""
    rows = [[key, value] for key, value in (
        ("cycles", result.cycles),
        ("packets delivered", result.packets_delivered),
        ("mean latency (cyc)", f"{result.mean_latency:.1f}"),
        ("p95 latency (cyc)", f"{result.p95_latency:.1f}"),
        ("relative power", f"{result.relative_power:.3f}"),
        ("transitions up/down",
         f"{result.transitions_up}/{result.transitions_down}"),
    )]
    print(format_table(["metric", "value"], rows))
    if result.reliability is not None:
        from repro.metrics.reliability import format_reliability

        print("\nreliability:")
        print(format_table(["metric", "value"],
                           format_reliability(result.reliability)))
    if result.power_series:
        print("\nrelative power over time:")
        baseline_watts = result.power_series[0][1]
        series = [w / baseline_watts for _, w in result.power_series]
        print("  " + sparkline(series))


def _command_table2() -> int:
    from repro.experiments.table2 import (
        link_totals,
        trend_model_rows,
        verify_against_paper,
    )

    rows = [[r["component"], r["power_mw"], r["trend"]]
            for r in trend_model_rows()]
    print(format_table(["component", "power @10G (mW)", "trend"], rows))
    totals = link_totals()
    print(f"\nVCSEL link: {totals['vcsel_at_10g_mw']:.0f} mW @10G -> "
          f"{totals['vcsel_at_5g_mw']:.0f} mW @5G "
          f"({100 * totals['vcsel_savings_at_5g']:.0f}% saving)")
    problems = verify_against_paper()
    print("paper cross-check:", "OK" if not problems else problems)
    return 0 if not problems else 1


def _command_trace(args) -> int:
    if args.trace_command == "synth":
        from repro.traffic.splash import generate_splash_trace, mean_packet_size
        from repro.traffic.trace import write_trace_file

        records = generate_splash_trace(
            args.benchmark, args.nodes, args.duration,
            seed=args.seed, intensity=args.intensity,
        )
        out = args.out or f"{args.benchmark}.trace"
        count = write_trace_file(records, out)
        print(f"wrote {count} records to {out} "
              f"(mean packet {mean_packet_size(records):.1f} flits)")
        return 0
    if args.trace_command == "convert":
        from repro.telemetry.export import iter_trace, to_csv, \
            write_chrome_trace

        if args.format == "chrome":
            out = args.out or f"{args.input}.json"
            count = write_chrome_trace(iter_trace(args.input), out)
            print(f"wrote {count} trace events to {out} "
                  f"(open at https://ui.perfetto.dev)")
        else:
            out = args.out or f"{args.input}.{args.kind}.csv"
            count = to_csv(iter_trace(args.input), args.kind, out)
            print(f"wrote {count} {args.kind} rows to {out}")
        return 0
    if args.trace_command == "summarize":
        from repro.telemetry.export import iter_trace, summarize_trace

        summary = summarize_trace(iter_trace(args.input))
        rows = [["events", summary["events"]],
                ["first cycle", summary["first_cycle"]],
                ["last cycle", summary["last_cycle"]],
                ["links seen", summary["links_seen"]]]
        for kind, count in sorted(summary["counts"].items()):
            rows.append([f"  {kind}", count])
        for key in ("power_min_w", "power_mean_w", "power_max_w",
                    "packet_mean_latency"):
            if key in summary:
                rows.append([key, f"{summary[key]:.3f}"])
        print(format_table(["metric", "value"], rows))
        power_series = [
            record["watts"] for record in iter_trace(args.input)
            if record.get("kind") == "power"
        ]
        if power_series:
            print("\npower over time:")
            print("  " + sparkline(power_series))
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}")


def _execution_plan(args):
    """The :class:`ExecutionPlan` the sweep flags describe, or ``None``
    when no resilience flag was given (the historical fail-fast path)."""
    if (args.journal is None and not args.resume and args.timeout is None
            and args.retries == 0 and not args.strict
            and args.exec_trace is None):
        return None
    from repro.experiments.executor import ExecutionPlan

    return ExecutionPlan(
        journal=args.journal, resume=args.resume, timeout=args.timeout,
        retries=args.retries, backoff=args.backoff, strict=args.strict,
        trace_path=args.exec_trace,
    )


def _print_journal_report(journal_path) -> None:
    """Summarise what the journal holds after a (possibly partial) sweep."""
    from repro.experiments.journal import SweepJournal

    with SweepJournal(journal_path) as journal:
        counts = journal.counts()
        failures = journal.failures()
    done = counts.get("done", 0)
    failed = counts.get("failed", 0)
    print(f"\njournal {journal_path}: {done} point(s) done, "
          f"{failed} failed")
    for failure in failures:
        print(f"  FAILED {failure['label']}: {failure['attempts']} "
              f"attempt(s) in {failure['elapsed']:.1f}s — "
              f"{failure['error']}")


def _command_sweep(args) -> int:
    scale = scale_with_topology(get_scale(args.scale), args.topology)
    if args.jobs < 0:
        print(f"error: --jobs must be >= 0, got {args.jobs}",
              file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs > 0 else None
    plan = _execution_plan(args)
    if args.kind == "ablation":
        from repro.experiments.ablation import ablation_table, run_ablation

        if plan is not None:
            print("note: the ablation sweep runs through its own harness; "
                  "the execution flags are ignored", file=sys.stderr)
        print(ablation_table(run_ablation(scale, seed=args.seed)))
        return 0
    if args.kind == "faults":
        from repro.experiments.faultsweep import (
            margin_sweep_table,
            run_margin_sweep,
        )

        results = run_margin_sweep(scale, seed=args.seed, max_workers=jobs,
                                   execution=plan)
        print(margin_sweep_table(results))
    else:
        from repro.experiments import fig5

        if args.kind == "window":
            sweeps = fig5.window_size_sweep(scale, seed=args.seed,
                                            max_workers=jobs,
                                            execution=plan)
            x_label = "Tw"
        else:
            sweeps = fig5.threshold_sweep(scale, seed=args.seed,
                                          max_workers=jobs, execution=plan)
            x_label = "avg threshold"
        for load, series in sweeps.items():
            print(f"\nload: {load}")
            rows = [
                [x, f"{r.latency_ratio:.2f}", f"{r.power_ratio:.3f}",
                 f"{r.power_latency_product:.3f}"]
                for x, r in zip(series.x_values, series.results)
            ]
            print(format_table([x_label, "latency x", "power x", "PLP"],
                               rows))
    if plan is not None and plan.journal is not None:
        _print_journal_report(plan.journal)
    if plan is not None and plan.trace_path is not None:
        print(f"\nexecutor trace written to {plan.trace_path}")
    return 0


def _command_bench(args) -> int:
    from repro import perfbench

    jobs = tuple(args.jobs)
    if args.sweep_only:
        snapshot = perfbench.sweep_snapshot(quick=args.quick, pr=args.pr,
                                            jobs=jobs)
    else:
        snapshot = perfbench.run_benchmarks(
            quick=args.quick, pr=args.pr, profile=not args.no_profile,
            topology=args.topology, backend=args.backend)
        if args.sweep:
            snapshot.update(perfbench.run_sweep_benchmarks(
                quick=args.quick, jobs=jobs))
    print(perfbench.format_snapshot(snapshot))
    if snapshot.get("sweep_datapoints"):
        print(perfbench.format_sweeps(snapshot))
    out = args.out
    if out is None and args.pr is not None:
        out = f"BENCH_{args.pr}.json"
    if out is not None:
        perfbench.write_snapshot(snapshot, out)
        print(f"\nsnapshot written to {out}")
    if args.sweep_floor is not None:
        short = snapshot.get("sweep_speedups", {}).get("short")
        if short is None:
            print("error: --sweep-floor needs the sweep family "
                  "(pass --sweep or --sweep-only)", file=sys.stderr)
            return 1
        if short < args.sweep_floor:
            print(f"\nSWEEP SPEEDUP BELOW FLOOR: warm short-point sweep "
                  f"ran at {short:.2f}x cold (floor "
                  f"{args.sweep_floor:.2f}x)", file=sys.stderr)
            return 1
    if args.compare is not None:
        baseline = perfbench.load_snapshot(args.compare)
        for warning in perfbench.calibration_warnings(snapshot, baseline):
            print(f"warning: {warning}", file=sys.stderr)
        regressions = perfbench.compare(snapshot, baseline,
                                        tolerance=args.tolerance)
        regressions += perfbench.compare_sweeps(snapshot, baseline,
                                                tolerance=args.tolerance)
        if regressions:
            print(f"\nREGRESSION vs {args.compare}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nwithin {args.tolerance:.0%} of {args.compare} "
              f"(calibration-normalised)")
    return 0


def _command_check(args) -> int:
    from pathlib import Path

    from repro.analysis.cli import run as check_run

    args.paths = [Path(p) for p in args.paths]
    args.root = Path(args.root) if args.root else None
    args.output = Path(args.output) if args.output else None
    return check_run(args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "table2":
            return _command_table2()
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "check":
            return _command_check(args)
        if args.command == "report":
            from repro.experiments.report import main as report_main

            return report_main(["--scale", args.scale, "--out", args.out,
                                "--seed", str(args.seed)])
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
